"""Client-churn experiments on the live-churn fast engine.

The paper's evaluation registers all profiles up front; real proxies see
clients come and go. This experiment plays a churn scenario — clients
joining over the epoch (and optionally leaving at the three-quarter
mark) — and measures how arrival spread affects delivered completeness
and cross-client fairness.

Three engines drive the same workload (``ChurnConfig.engine``):

* ``"fast"`` (default) — the event-indexed
  :class:`~repro.simulation.engine.FastProxySimulator` with the client
  plan lowered to a :class:`~repro.simulation.churn.ChurnPlan`;
  registrations and cancellations splice into the live structures in
  O(log n + touched) per event.
* ``"rebuild"`` — the same plan, but every churn event is followed by a
  from-scratch
  :meth:`~repro.simulation.engine.FastProxySimulator.rebuild_structures`
  (identical results by construction; ``benchmarks/bench_churn.py``
  tracks the speedup between the two).
* ``"proxy"`` — the original reference path through the live
  :class:`~repro.runtime.proxy.MonitoringProxy`, kept as the executable
  specification of the client-facing semantics.

All client profiles are generated up front through the vectorized
fast-gen path (one seeded generator per client, independent of join
timing), so the engines consume byte-identical workloads.
"""

from __future__ import annotations

import statistics
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

import numpy as np

from repro.core.budget import BudgetVector
from repro.core.errors import WorkloadError
from repro.core.intervals import TInterval
from repro.core.profile import Profile, ProfileSet
from repro.core.timeline import Epoch
from repro.offline.conflict import clear_demand_cache
from repro.online.registry import parse_policy_spec
from repro.runtime.proxy import MonitoringProxy
from repro.runtime.server import OriginServer
from repro.simulation.churn import ChurnEvent, ChurnPlan, run_churned
from repro.traces.models import PoissonUpdateModel
from repro.workloads.generator import GeneratorConfig, ProfileGenerator

__all__ = ["ChurnConfig", "ClientOutcome", "ChurnResult", "ChurnSweep",
           "ChurnSweepRow", "build_churn_workload", "run_churn",
           "churn_sweep", "jain_index"]

#: Engines accepted by :attr:`ChurnConfig.engine`.
CHURN_ENGINES = ("fast", "rebuild", "proxy")


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``; 1.0 = perfectly fair.

    Defined as 1.0 for empty input or all-zero values (no allocation to
    be unfair about).
    """
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Knobs of the churn experiment.

    Attributes
    ----------
    epoch_length, num_resources, intensity:
        Trace shape (Poisson updates).
    num_clients:
        Number of clients.
    profiles_per_client:
        AuctionWatch profiles each client registers on arrival.
    join_spread:
        Fraction of the epoch over which clients arrive, uniformly.
        0.0 = everyone at the start (the paper's static setting);
        0.8 = arrivals throughout the first 80% of the epoch.
    leave_probability:
        Chance that a client unregisters all profiles at the three-
        quarter mark (simulating churn out).
    policy:
        Policy spec, e.g. ``"MRSF(P)"``.
    budget, max_rank, window, seed:
        As in the main experiments.
    engine:
        ``"fast"`` (incremental engine, default), ``"rebuild"``
        (from-scratch referee) or ``"proxy"`` (live reference proxy).
    """

    epoch_length: int = 400
    num_resources: int = 80
    intensity: float = 10.0
    num_clients: int = 8
    profiles_per_client: int = 10
    join_spread: float = 0.0
    leave_probability: float = 0.0
    policy: str = "MRSF(P)"
    budget: int = 1
    max_rank: int = 3
    window: int = 10
    seed: int = 4242
    engine: str = "fast"

    def __post_init__(self) -> None:
        if not 0.0 <= self.join_spread <= 1.0:
            raise WorkloadError(
                f"join_spread must be in [0, 1], got {self.join_spread}")
        if not 0.0 <= self.leave_probability <= 1.0:
            raise WorkloadError(
                f"leave_probability must be in [0, 1], got "
                f"{self.leave_probability}")
        if self.num_clients < 1:
            raise WorkloadError("num_clients must be >= 1")
        if self.engine not in CHURN_ENGINES:
            raise WorkloadError(
                f"engine must be one of {CHURN_ENGINES}, "
                f"got {self.engine!r}")


@dataclass(frozen=True, slots=True)
class ClientOutcome:
    """Per-client accounting."""

    name: str
    joined_at: int
    left_at: int | None
    registered: int
    notified: int

    @property
    def completeness(self) -> float:
        """Notifications per registered t-interval (1.0 when none)."""
        if self.registered == 0:
            return 1.0
        return self.notified / self.registered


@dataclass(frozen=True, slots=True)
class ChurnResult:
    """Outcome of one churn run."""

    clients: tuple[ClientOutcome, ...]
    completed: int
    expired: int
    dropped: int
    probes_used: int
    engine: str = "fast"

    @property
    def overall_completeness(self) -> float:
        resolved = self.completed + self.expired
        if resolved == 0:
            return 1.0
        return self.completed / resolved

    @property
    def fairness(self) -> float:
        """Jain index over per-client completeness."""
        return jain_index([client.completeness
                           for client in self.clients])

    @property
    def mean_client_completeness(self) -> float:
        return statistics.fmean(client.completeness
                                for client in self.clients)


def _client_profiles(config: ChurnConfig, trace, epoch: Epoch,
                     index: int, client_name: str) -> list[Profile]:
    """One client's (bare, unattached) profiles, timing-independent.

    Each client gets its own seeded generator on the vectorized
    fast-gen path, so the workload is a pure function of the config —
    identical whether the client joins at chronon 0 or mid-epoch, and
    identical across the three engines.
    """
    generator = ProfileGenerator(GeneratorConfig(
        num_profiles=config.profiles_per_client,
        max_rank=config.max_rank,
        window=config.window,
        grouping="overlap",
        seed=config.seed + 101 * (index + 1),
    ), fast=True)
    profiles = generator.generate(
        trace, epoch, resource_ids=list(range(config.num_resources)))
    bare = []
    for profile in profiles:
        candidate = Profile([TInterval(eta.eis) for eta in profile],
                            name=f"{client_name}/{profile.name}")
        if len(candidate) == 0:
            continue  # the generator can produce empty profiles
        bare.append(candidate)
    return bare


def _workload(config: ChurnConfig):
    """Derive the full churn scenario from the config (pure function)."""
    rng = np.random.default_rng(config.seed)
    epoch = Epoch(config.epoch_length)
    trace = PoissonUpdateModel(config.intensity,
                               seed=config.seed).generate(
        range(config.num_resources), epoch)

    # Arrival plan: chronon each client joins (0 = before the run).
    # Sorted, so client index order is also join-chronon order.
    horizon = int(config.join_spread * config.epoch_length)
    joins = sorted(int(rng.integers(0, horizon + 1))
                   for _ in range(config.num_clients))
    leave_at = (3 * config.epoch_length) // 4
    leavers = [bool(rng.random() < config.leave_probability)
               for _ in range(config.num_clients)]

    names = [f"client-{index}" for index in range(config.num_clients)]
    profiles_by_client = [
        _client_profiles(config, trace, epoch, index, names[index])
        for index in range(config.num_clients)
    ]
    counts = [sum(len(profile) for profile in client_profiles)
              for client_profiles in profiles_by_client]
    return (epoch, trace, joins, leave_at, leavers, names,
            profiles_by_client, counts)


def run_churn(config: ChurnConfig) -> ChurnResult:
    """Execute one churn scenario end to end."""
    (epoch, trace, joins, leave_at, leavers, names,
     profiles_by_client, counts) = _workload(config)
    if config.engine == "proxy":
        return _run_churn_proxy(config, epoch, trace, joins, leave_at,
                                leavers, names, profiles_by_client,
                                counts)
    return _run_churn_engine(config, epoch, trace, joins, leave_at,
                             leavers, names, profiles_by_client, counts)


def build_churn_workload(config: ChurnConfig) \
        -> tuple[ProfileSet, ChurnPlan, Epoch]:
    """The engine-path workload of ``config``: initial set + plan.

    Benchmarks use this to generate the (expensive, engine-independent)
    instance once and time only the engine runs.
    """
    (epoch, _trace, joins, leave_at, leavers, _names,
     profiles_by_client, _counts) = _workload(config)
    initial, events, _ids, _marks = _engine_plan(
        config, epoch, joins, leave_at, leavers, profiles_by_client)
    return ProfileSet(initial), ChurnPlan(tuple(events)), epoch


def _engine_plan(config: ChurnConfig, epoch: Epoch, joins: list[int],
                 leave_at: int, leavers: list[bool],
                 profiles_by_client: list[list[Profile]]):
    """Lower the client scenario to (initial set, churn events).

    Profile ids are predicted: the initial set takes 0..n-1 in
    registration order, churn adds continue sequentially in plan
    (= application) order — exactly the engine's assignment rule.
    """
    ids_by_client: list[list[int]] = [[] for _ in profiles_by_client]
    initial: list[Profile] = []
    next_id = 0
    for index, client_profiles in enumerate(profiles_by_client):
        if joins[index] == 0:
            for profile in client_profiles:
                initial.append(profile)
                ids_by_client[index].append(next_id)
                next_id += 1

    events: list[ChurnEvent] = []
    # joins is sorted, so appending adds in client order puts the plan
    # in ascending-chronon (= id assignment) order automatically.
    for index, client_profiles in enumerate(profiles_by_client):
        if joins[index] > 0:
            for profile in client_profiles:
                events.append(ChurnEvent.add(joins[index], profile))
                ids_by_client[index].append(next_id)
                next_id += 1
    # Cancellations append after the adds: at the leave chronon the
    # proxy registers joiners first, then processes leavers — same-
    # chronon plan order reproduces that. A leaver that joins *after*
    # leave_at keeps its mark but nothing to unregister (the reference
    # proxy's behaviour, preserved verbatim).
    left_marks: list[int | None] = [None] * config.num_clients
    if leave_at >= epoch.first:
        for index, leaving in enumerate(leavers):
            if not leaving:
                continue
            left_marks[index] = leave_at
            if joins[index] <= leave_at:
                for profile_id in ids_by_client[index]:
                    events.append(
                        ChurnEvent.remove(leave_at, profile_id))
    return initial, events, ids_by_client, left_marks


def _run_churn_engine(config: ChurnConfig, epoch: Epoch, trace,
                      joins: list[int], leave_at: int,
                      leavers: list[bool], names: list[str],
                      profiles_by_client: list[list[Profile]],
                      counts: list[int]) -> ChurnResult:
    """Fast-engine path: the client plan lowered to a ChurnPlan."""
    policy, preemptive = parse_policy_spec(config.policy)
    initial, events, ids_by_client, left_marks = _engine_plan(
        config, epoch, joins, leave_at, leavers, profiles_by_client)

    result = run_churned(
        ProfileSet(initial), epoch, BudgetVector(config.budget), policy,
        plan=ChurnPlan(tuple(events)), preemptive=preemptive,
        mode="rebuild" if config.engine == "rebuild" else "incremental")

    per_profile = result.report.per_profile
    outcomes = tuple(
        ClientOutcome(
            name=names[index],
            joined_at=joins[index],
            left_at=left_marks[index],
            registered=counts[index],
            notified=sum(per_profile[profile_id][0]
                         for profile_id in ids_by_client[index]),
        )
        for index in range(config.num_clients)
    )
    return ChurnResult(
        clients=outcomes,
        completed=result.report.captured,
        expired=result.expired,
        dropped=int(result.extras.get("dropped", 0.0)),
        probes_used=result.probes_used,
        engine=config.engine,
    )


def _run_churn_proxy(config: ChurnConfig, epoch: Epoch, trace,
                     joins: list[int], leave_at: int,
                     leavers: list[bool], names: list[str],
                     profiles_by_client: list[list[Profile]],
                     counts: list[int]) -> ChurnResult:
    """Reference path through the live MonitoringProxy."""
    policy, preemptive = parse_policy_spec(config.policy)
    proxy = MonitoringProxy(OriginServer(trace), epoch,
                            BudgetVector(config.budget), policy,
                            preemptive=preemptive)

    clients = [proxy.register_client(name) for name in names]
    registrations: list[list[int]] = [[] for _ in names]

    def register(index: int) -> None:
        for profile in profiles_by_client[index]:
            registrations[index].append(
                proxy.register_profile(clients[index], profile))

    # Join at chronon 0 means "before the run starts".
    pending = list(range(config.num_clients))
    for index in list(pending):
        if joins[index] == 0:
            register(index)
            pending.remove(index)

    left_marks: list[int | None] = [None] * config.num_clients
    while proxy.clock < epoch.last:
        chronon = proxy.step()
        for index in list(pending):
            if joins[index] == chronon:
                register(index)
                pending.remove(index)
        if chronon == leave_at:
            for index, leaving in enumerate(leavers):
                if leaving and left_marks[index] is None:
                    for profile_id in registrations[index]:
                        proxy.unregister_profile(profile_id)
                    left_marks[index] = chronon
    stats = proxy.run()  # flush accounting

    outcomes = tuple(
        ClientOutcome(
            name=clients[index].name,
            joined_at=joins[index],
            left_at=left_marks[index],
            registered=counts[index],
            notified=len(clients[index].mailbox),
        )
        for index in range(config.num_clients)
    )
    return ChurnResult(
        clients=outcomes,
        completed=stats.completed,
        expired=stats.expired,
        dropped=stats.dropped,
        probes_used=stats.probes_used,
        engine="proxy",
    )


# ----------------------------------------------------------------------
# The churn sweep experiment (CLI: repro-experiments churn)
# ----------------------------------------------------------------------

#: Join spreads swept (leave_probability 0), plus one churn-out row.
SWEEP_SPREADS: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8)

#: Per-scale baseline churn configs, mirroring ``config.SCALES``.
CHURN_SCALES: dict[str, ChurnConfig] = {
    "paper": ChurnConfig(epoch_length=500, num_resources=100,
                         num_clients=16, profiles_per_client=12,
                         budget=2),
    "default": ChurnConfig(),
    "smoke": ChurnConfig(epoch_length=80, num_resources=16,
                         intensity=8.0, num_clients=3,
                         profiles_per_client=3, window=6),
}


@dataclass(frozen=True, slots=True)
class ChurnSweepRow:
    """One churn scenario's aggregate outcome."""

    join_spread: float
    leave_probability: float
    completeness: float
    mean_client_completeness: float
    fairness: float
    completed: int
    expired: int
    dropped: int
    probes_used: int
    runtime_seconds: float


@dataclass(frozen=True)
class ChurnSweep:
    """The churn experiment: one row per swept scenario."""

    config: ChurnConfig
    policy: str
    engine: str
    rows: tuple[ChurnSweepRow, ...]


def _timed_churn(config: ChurnConfig) -> tuple[ChurnResult, float]:
    started = time.perf_counter()
    result = run_churn(config)
    return result, time.perf_counter() - started


def _map_engine(engine: str | None) -> str:
    """CLI engine names -> churn engines.

    ``batch`` has no churn lowering (the columnar engine is epoch-
    static), so it rides the fast incremental path; ``reference`` maps
    to the live proxy.
    """
    if engine is None:
        return "fast"
    return {"fast": "fast", "batch": "fast", "reference": "proxy",
            "rebuild": "rebuild"}.get(engine, engine)


def churn_sweep(scale: str = "default",
                workers: int | None = None,
                engine: str | None = None) -> ChurnSweep:
    """Completeness/fairness vs. arrival spread, plus a churn-out row.

    Sweeps ``join_spread`` over :data:`SWEEP_SPREADS` with no leavers,
    then adds one scenario with late arrivals *and* 50% churn-out.
    ``workers=N`` fans scenarios over a process pool (results identical
    to serial — each scenario is an independent seeded run).
    """
    base = CHURN_SCALES[scale]
    churn_engine = _map_engine(engine)
    configs = [replace(base, join_spread=spread, engine=churn_engine)
               for spread in SWEEP_SPREADS]
    configs.append(replace(base, join_spread=0.6, leave_probability=0.5,
                           engine=churn_engine))

    if workers:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_timed_churn, configs))
    else:
        outcomes = [_timed_churn(config) for config in configs]

    rows = tuple(
        ChurnSweepRow(
            join_spread=config.join_spread,
            leave_probability=config.leave_probability,
            completeness=result.overall_completeness,
            mean_client_completeness=result.mean_client_completeness,
            fairness=result.fairness,
            completed=result.completed,
            expired=result.expired,
            dropped=result.dropped,
            probes_used=result.probes_used,
            runtime_seconds=seconds,
        )
        for config, (result, seconds) in zip(configs, outcomes)
    )
    # Epoch teardown: the sweep is done with these t-intervals; release
    # the shared demand-map cache entries they may have populated.
    clear_demand_cache()
    return ChurnSweep(config=base, policy=base.policy,
                      engine=churn_engine, rows=rows)
