"""Client-churn experiments on the live runtime.

The paper's evaluation registers all profiles up front; real proxies see
clients come and go. This experiment drives the
:class:`~repro.runtime.proxy.MonitoringProxy` with clients joining over
the epoch (and optionally leaving), measuring how arrival spread affects
delivered completeness and cross-client fairness.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

import numpy as np

from repro.core.budget import BudgetVector
from repro.core.errors import WorkloadError
from repro.core.timeline import Epoch
from repro.online.registry import parse_policy_spec
from repro.runtime.proxy import MonitoringProxy
from repro.runtime.server import OriginServer
from repro.traces.models import PoissonUpdateModel
from repro.workloads.generator import GeneratorConfig, ProfileGenerator

__all__ = ["ChurnConfig", "ClientOutcome", "ChurnResult", "run_churn",
           "jain_index"]


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``; 1.0 = perfectly fair.

    Defined as 1.0 for empty input or all-zero values (no allocation to
    be unfair about).
    """
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Knobs of the churn experiment.

    Attributes
    ----------
    epoch_length, num_resources, intensity:
        Trace shape (Poisson updates).
    num_clients:
        Number of clients.
    profiles_per_client:
        AuctionWatch profiles each client registers on arrival.
    join_spread:
        Fraction of the epoch over which clients arrive, uniformly.
        0.0 = everyone at the start (the paper's static setting);
        0.8 = arrivals throughout the first 80% of the epoch.
    leave_probability:
        Chance that a client unregisters all profiles at the three-
        quarter mark (simulating churn out).
    policy:
        Policy spec, e.g. ``"MRSF(P)"``.
    budget, max_rank, window, seed:
        As in the main experiments.
    """

    epoch_length: int = 400
    num_resources: int = 80
    intensity: float = 10.0
    num_clients: int = 8
    profiles_per_client: int = 10
    join_spread: float = 0.0
    leave_probability: float = 0.0
    policy: str = "MRSF(P)"
    budget: int = 1
    max_rank: int = 3
    window: int = 10
    seed: int = 4242

    def __post_init__(self) -> None:
        if not 0.0 <= self.join_spread <= 1.0:
            raise WorkloadError(
                f"join_spread must be in [0, 1], got {self.join_spread}")
        if not 0.0 <= self.leave_probability <= 1.0:
            raise WorkloadError(
                f"leave_probability must be in [0, 1], got "
                f"{self.leave_probability}")
        if self.num_clients < 1:
            raise WorkloadError("num_clients must be >= 1")


@dataclass(frozen=True, slots=True)
class ClientOutcome:
    """Per-client accounting."""

    name: str
    joined_at: int
    left_at: int | None
    registered: int
    notified: int

    @property
    def completeness(self) -> float:
        """Notifications per registered t-interval (1.0 when none)."""
        if self.registered == 0:
            return 1.0
        return self.notified / self.registered


@dataclass(frozen=True, slots=True)
class ChurnResult:
    """Outcome of one churn run."""

    clients: tuple[ClientOutcome, ...]
    completed: int
    expired: int
    dropped: int
    probes_used: int

    @property
    def overall_completeness(self) -> float:
        resolved = self.completed + self.expired
        if resolved == 0:
            return 1.0
        return self.completed / resolved

    @property
    def fairness(self) -> float:
        """Jain index over per-client completeness."""
        return jain_index([client.completeness
                           for client in self.clients])

    @property
    def mean_client_completeness(self) -> float:
        return statistics.fmean(client.completeness
                                for client in self.clients)


def run_churn(config: ChurnConfig) -> ChurnResult:
    """Execute one churn scenario end to end."""
    rng = np.random.default_rng(config.seed)
    epoch = Epoch(config.epoch_length)
    trace = PoissonUpdateModel(config.intensity,
                               seed=config.seed).generate(
        range(config.num_resources), epoch)

    policy, preemptive = parse_policy_spec(config.policy)
    proxy = MonitoringProxy(OriginServer(trace), epoch,
                            BudgetVector(config.budget), policy,
                            preemptive=preemptive)

    # Arrival plan: chronon each client joins (0 = before the run).
    horizon = int(config.join_spread * config.epoch_length)
    joins = sorted(int(rng.integers(0, horizon + 1))
                   for _ in range(config.num_clients))
    leave_at = (3 * config.epoch_length) // 4
    leavers = [bool(rng.random() < config.leave_probability)
               for _ in range(config.num_clients)]

    clients = []
    registrations: list[list[int]] = []
    counts: list[int] = []
    for index in range(config.num_clients):
        clients.append(proxy.register_client(f"client-{index}"))
        registrations.append([])
        counts.append(0)

    def register(index: int) -> None:
        # Each client brings its own (seeded) interests.
        generator = ProfileGenerator(GeneratorConfig(
            num_profiles=config.profiles_per_client,
            max_rank=config.max_rank,
            window=config.window,
            grouping="overlap",
            seed=config.seed + 101 * (index + 1),
        ))
        profiles = generator.generate(
            trace, epoch, resource_ids=list(range(config.num_resources)))
        for profile in profiles:
            from repro.core.profile import Profile
            from repro.core.intervals import TInterval
            bare = Profile([TInterval(eta.eis) for eta in profile],
                           name=f"{clients[index].name}/{profile.name}")
            if len(bare) == 0:
                continue  # the generator can produce empty profiles
            counts[index] += len(bare)
            registrations[index].append(
                proxy.register_profile(clients[index], bare))

    # Join at chronon 0 means "before the run starts".
    pending = list(range(config.num_clients))
    for index in list(pending):
        if joins[index] == 0:
            register(index)
            pending.remove(index)

    left_marks: list[int | None] = [None] * config.num_clients
    while proxy.clock < epoch.last:
        chronon = proxy.step()
        for index in list(pending):
            if joins[index] == chronon:
                register(index)
                pending.remove(index)
        if chronon == leave_at:
            for index, leaving in enumerate(leavers):
                if leaving and left_marks[index] is None:
                    for profile_id in registrations[index]:
                        proxy.unregister_profile(profile_id)
                    left_marks[index] = chronon
    stats = proxy.run()  # flush accounting

    outcomes = tuple(
        ClientOutcome(
            name=clients[index].name,
            joined_at=joins[index],
            left_at=left_marks[index],
            registered=counts[index],
            notified=len(clients[index].mailbox),
        )
        for index in range(config.num_clients)
    )
    return ChurnResult(
        clients=outcomes,
        completed=stats.completed,
        expired=stats.expired,
        dropped=stats.dropped,
        probes_used=stats.probes_used,
    )
