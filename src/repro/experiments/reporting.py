"""Plain-text reporting: ASCII tables and CSV dumps for experiment output.

The benchmark harness prints the same rows/series the paper plots; these
helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

import csv
import io
from typing import Sequence

from repro.experiments.harness import SweepResult

__all__ = ["render_table", "sweep_table", "sweep_csv"]


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table with padded columns.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header.ljust(width)
                            for header, width in zip(headers, widths))
                 .rstrip())
    lines.append("-+-".join("-" * width for width in widths))
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths))
                     .rstrip())
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def sweep_table(result: SweepResult, metric: str = "gc",
                labels: Sequence[str] | None = None) -> str:
    """One row per swept value, one column per policy."""
    labels = list(labels) if labels is not None else result.labels()
    headers = [result.parameter] + labels
    rows = []
    for index, x_value in enumerate(result.x_values):
        row: list[object] = [x_value]
        for label in labels:
            row.append(result.series(label, metric)[index])
        rows.append(row)
    suffix = "runtime (s)" if metric == "runtime" else "gained completeness"
    return render_table(headers, rows, title=f"{result.name} — {suffix}")


def sweep_csv(result: SweepResult, metric: str = "gc",
              labels: Sequence[str] | None = None) -> str:
    """The same series as CSV text (one header row, then data rows)."""
    labels = list(labels) if labels is not None else result.labels()
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([result.parameter] + labels)
    for index, x_value in enumerate(result.x_values):
        writer.writerow(
            [x_value] + [f"{result.series(label, metric)[index]:.6f}"
                         for label in labels])
    return buffer.getvalue()
