"""Graceful-degradation experiments: GC under unreliable origin servers.

Beyond the paper (whose evaluation assumes every probe succeeds): sweep
the per-probe failure rate of the origin server and measure how each
policy family's gained completeness degrades. Failed probes burn budget
— the paper's ``C_j`` is a request budget — so policies degrade both
because captures are lost outright and because retries/wasted probes
starve other candidates.

Two knobs beyond the failure rate matter and are exposed:

* an in-chronon retry allowance (spends leftover budget on failed
  probes);
* a circuit breaker quarantining persistently dead resources, which is
  what keeps a permanent outage from bleeding the whole budget.

The sweep reuses the harness's :class:`RunOutcome`/:class:`SweepResult`
containers, so the standard reporting/export pipeline renders it.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import ExperimentConfig, baseline
from repro.experiments.harness import (
    PolicyOutcome,
    RunOutcome,
    SweepResult,
    make_instance,
)
from repro.faults.breaker import CircuitBreaker, RetryConfig
from repro.faults.model import FaultSpec, Outage
from repro.online.registry import parse_policy_spec
from repro.simulation.proxy import run_online

__all__ = [
    "DEFAULT_FAILURE_RATES",
    "FAULT_POLICY_VARIANTS",
    "breaker_ablation",
    "fault_sweep",
    "run_fault_setting",
]

#: The four policy families of the degradation plots, (P) and (NP) each.
FAULT_POLICY_VARIANTS: tuple[str, ...] = (
    "S-EDF(P)", "S-EDF(NP)",
    "MRSF(P)", "MRSF(NP)",
    "M-EDF(P)", "M-EDF(NP)",
    "COVERAGE(P)", "COVERAGE(NP)",
)

DEFAULT_FAILURE_RATES: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


def _default_breaker() -> CircuitBreaker:
    return CircuitBreaker(failure_threshold=3, cooldown=4,
                          backoff_factor=2.0, max_cooldown=64)


def run_fault_setting(config: ExperimentConfig, failure_rate: float,
                      policies: Sequence[str] = FAULT_POLICY_VARIANTS,
                      retry: RetryConfig | None = RetryConfig(1),
                      use_breaker: bool = True,
                      source: str = "poisson") -> RunOutcome:
    """All policies on shared instances, each probe failing with
    ``failure_rate``.

    Every (policy, repetition) run gets a fresh breaker — breaker state
    is per-run — but the fault *seed* is shared per repetition, so all
    policies face the same unreliable world.
    """
    gc_acc: dict[str, list[float]] = {label: [] for label in policies}
    rt_acc: dict[str, list[float]] = {label: [] for label in policies}
    for repetition in range(config.repetitions):
        _trace, profiles = make_instance(config, repetition, source=source)
        spec = FaultSpec(failure_probability=failure_rate,
                         seed=config.seed + 7919 * repetition)
        for label in policies:
            policy, preemptive = parse_policy_spec(label)
            result = run_online(
                profiles, config.epoch, config.budget_vector, policy,
                preemptive=preemptive, faults=spec, retry=retry,
                breaker=_default_breaker() if use_breaker else None)
            gc_acc[label].append(result.gc)
            rt_acc[label].append(result.runtime_seconds)
    outcomes = {
        label: PolicyOutcome(label, tuple(gc_acc[label]),
                             tuple(rt_acc[label]))
        for label in policies
    }
    return RunOutcome(config=config, outcomes=outcomes)


def fault_sweep(scale: str = "default",
                rates: Sequence[float] = DEFAULT_FAILURE_RATES,
                policies: Sequence[str] = FAULT_POLICY_VARIANTS,
                retry: RetryConfig | None = RetryConfig(1),
                use_breaker: bool = True) -> SweepResult:
    """The graceful-degradation curve: GC vs. per-probe failure rate."""
    config = baseline(scale)
    runs = tuple(
        run_fault_setting(config, rate, policies, retry=retry,
                          use_breaker=use_breaker)
        for rate in rates
    )
    return SweepResult(name="faults", parameter="failure_rate",
                       x_values=tuple(rates), runs=runs)


def breaker_ablation(scale: str = "smoke",
                     policy: str = "S-EDF(P)",
                     dead_resources: Sequence[int] = (0,),
                     ) -> dict[str, float]:
    """GC with and without the circuit breaker under permanent outages.

    Kills ``dead_resources`` for the whole epoch and runs one policy
    twice on the same instances. Returns ``{"with_breaker": gc,
    "without_breaker": gc}`` — with the breaker the budget wasted on
    dead resources is redirected, so its GC should come out at least as
    high.
    """
    config = baseline(scale)
    outages = tuple(Outage(resource_id, 0, None)
                    for resource_id in dead_resources)
    spec = FaultSpec(outages=outages, seed=config.seed)
    gc_with: list[float] = []
    gc_without: list[float] = []
    for repetition in range(config.repetitions):
        _trace, profiles = make_instance(config, repetition)
        for accumulator, breaker in ((gc_with, _default_breaker()),
                                     (gc_without, None)):
            # Fresh policy per run: some baselines keep per-run state.
            policy_obj, preemptive = parse_policy_spec(policy)
            result = run_online(profiles, config.epoch,
                                config.budget_vector, policy_obj,
                                preemptive=preemptive, faults=spec,
                                breaker=breaker)
            accumulator.append(result.gc)
    return {
        "with_breaker": sum(gc_with) / len(gc_with),
        "without_breaker": sum(gc_without) / len(gc_without),
    }
