"""Graceful-degradation experiments: GC under unreliable origin servers.

Beyond the paper (whose evaluation assumes every probe succeeds): sweep
the per-probe failure rate of the origin server and measure how each
policy family's gained completeness degrades. Failed probes burn budget
— the paper's ``C_j`` is a request budget — so policies degrade both
because captures are lost outright and because retries/wasted probes
starve other candidates.

Two knobs beyond the failure rate matter and are exposed:

* an in-chronon retry allowance (spends leftover budget on failed
  probes);
* a circuit breaker quarantining persistently dead resources, which is
  what keeps a permanent outage from bleeding the whole budget.

The sweep reuses the harness's :class:`RunOutcome`/:class:`SweepResult`
containers, so the standard reporting/export pipeline renders it. Since
the fault layer lowers into the columnar batch engine (see
``docs/ALGORITHMS.md`` §14), degradation sweeps default to
``engine="batch"``: every (rate, repetition, policy) combination becomes
a lane of one columnar mega block — the fault seed depends only on the
repetition, so all rates share the block's generated instances — and
produces probe-for-probe the fast engine's results. ``engine="fast"``
runs the combinations one at a time; lanes the batch engine cannot take
fall back to the fast engine per (cell, policy) and are counted in
``RunOutcome.fell_back`` / ``SweepResult.fell_back``.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.config import ExperimentConfig, baseline
from repro.experiments.harness import (
    FaultCell,
    RunOutcome,
    SweepResult,
    _merge_cells,
    _run_cells_parallel,
    _run_cells_serial,
    make_instance,
)
from repro.faults.breaker import CircuitBreaker, RetryConfig
from repro.faults.model import FaultSpec, Outage
from repro.online.registry import parse_policy_spec
from repro.simulation.proxy import run_online

__all__ = [
    "DEFAULT_FAILURE_RATES",
    "FAULT_POLICY_VARIANTS",
    "breaker_ablation",
    "fault_sweep",
    "run_fault_setting",
]

#: The four policy families of the degradation plots, (P) and (NP) each.
FAULT_POLICY_VARIANTS: tuple[str, ...] = (
    "S-EDF(P)", "S-EDF(NP)",
    "MRSF(P)", "MRSF(NP)",
    "M-EDF(P)", "M-EDF(NP)",
    "COVERAGE(P)", "COVERAGE(NP)",
)

DEFAULT_FAILURE_RATES: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

#: (failure_threshold, cooldown, backoff_factor, max_cooldown) of the
#: degradation experiments' breaker; every policy run gets a fresh one.
_BREAKER_PARAMS: tuple[int, int, float, int] = (3, 4, 2.0, 64)


def _default_breaker() -> CircuitBreaker:
    threshold, cooldown, backoff, max_cooldown = _BREAKER_PARAMS
    return CircuitBreaker(failure_threshold=threshold, cooldown=cooldown,
                          backoff_factor=backoff,
                          max_cooldown=max_cooldown)


def _fault_cell(config: ExperimentConfig, repetition: int,
                failure_rate: float, retry: RetryConfig | None,
                use_breaker: bool) -> FaultCell:
    """One repetition's fault layer: shared seed, per-run breaker."""
    spec = FaultSpec(failure_probability=failure_rate,
                     seed=config.seed + 7919 * repetition)
    return FaultCell(spec=spec, retry=retry,
                     breaker=_BREAKER_PARAMS if use_breaker else None)


def _run_fault_cells(config: ExperimentConfig, rates: Sequence[float],
                     policies: Sequence[str],
                     retry: RetryConfig | None, use_breaker: bool,
                     source: str, engine: str,
                     workers: int | None) -> list[RunOutcome]:
    """One RunOutcome per rate, all cells through the harness executors.

    The flat cell list spans every (rate, repetition); under the batch
    engine all cells share one block key — the fault seed folds in only
    the repetition, so every rate faces the same generated world — and
    the whole sweep advances as columnar mega blocks.
    """
    flat = [
        (config, repetition, tuple(policies), False, source, engine,
         "fast",
         _fault_cell(config, repetition, rate, retry, use_breaker))
        for rate in rates
        for repetition in range(config.repetitions)
    ]
    if workers is not None and workers > 1 and len(flat) > 1:
        cells = _run_cells_parallel(flat, workers)
    else:
        cells = _run_cells_serial(flat)
    runs = []
    cursor = 0
    for _rate in rates:
        span = cells[cursor:cursor + config.repetitions]
        cursor += config.repetitions
        runs.append(_merge_cells(config, span, policies, False))
    return runs


def run_fault_setting(config: ExperimentConfig, failure_rate: float,
                      policies: Sequence[str] = FAULT_POLICY_VARIANTS,
                      retry: RetryConfig | None = RetryConfig(1),
                      use_breaker: bool = True,
                      source: str = "poisson",
                      engine: str = "batch",
                      workers: int | None = None) -> RunOutcome:
    """All policies on shared instances, each probe failing with
    ``failure_rate``.

    Every (policy, repetition) run gets a fresh breaker — breaker state
    is per-run — but the fault *seed* is shared per repetition, so all
    policies face the same unreliable world. ``engine="batch"``
    (default) runs every (repetition, policy) combination as one lane of
    a columnar mega block; results are identical to ``engine="fast"``.
    """
    return _run_fault_cells(config, (failure_rate,), policies, retry,
                            use_breaker, source, engine, workers)[0]


def fault_sweep(scale: str = "default",
                rates: Sequence[float] = DEFAULT_FAILURE_RATES,
                policies: Sequence[str] = FAULT_POLICY_VARIANTS,
                retry: RetryConfig | None = RetryConfig(1),
                use_breaker: bool = True,
                engine: str = "batch",
                workers: int | None = None,
                config: ExperimentConfig | None = None) -> SweepResult:
    """The graceful-degradation curve: GC vs. per-probe failure rate.

    ``engine`` picks the simulation engine for every (rate, repetition,
    policy) combination — ``"batch"`` (default) advances them as lanes
    of shared columnar mega blocks, ``"fast"`` runs them one at a time;
    both produce identical series. ``workers=N`` farms cells out to a
    process pool. ``config`` overrides the baseline config of ``scale``
    (benchmarks sweep custom sizes).
    """
    if config is None:
        config = baseline(scale)
    runs = _run_fault_cells(config, rates, policies, retry, use_breaker,
                            "poisson", engine, workers)
    return SweepResult(name="faults", parameter="failure_rate",
                       x_values=tuple(rates), runs=tuple(runs))


def breaker_ablation(scale: str = "smoke",
                     policy: str = "S-EDF(P)",
                     dead_resources: Sequence[int] = (0,),
                     ) -> dict[str, float]:
    """GC with and without the circuit breaker under permanent outages.

    Kills ``dead_resources`` for the whole epoch and runs one policy
    twice on the same instances. Returns ``{"with_breaker": gc,
    "without_breaker": gc}`` — with the breaker the budget wasted on
    dead resources is redirected, so its GC should come out at least as
    high.
    """
    config = baseline(scale)
    outages = tuple(Outage(resource_id, 0, None)
                    for resource_id in dead_resources)
    spec = FaultSpec(outages=outages, seed=config.seed)
    gc_with: list[float] = []
    gc_without: list[float] = []
    for repetition in range(config.repetitions):
        _trace, profiles = make_instance(config, repetition)
        for accumulator, breaker in ((gc_with, _default_breaker()),
                                     (gc_without, None)):
            # Fresh policy per run: some baselines keep per-run state.
            policy_obj, preemptive = parse_policy_spec(policy)
            result = run_online(profiles, config.epoch,
                                config.budget_vector, policy_obj,
                                preemptive=preemptive, faults=spec,
                                breaker=breaker)
            accumulator.append(result.gc)
    return {
        "with_breaker": sum(gc_with) / len(gc_with),
        "without_breaker": sum(gc_without) / len(gc_without),
    }
