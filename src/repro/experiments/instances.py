"""Content-addressed instance cache for the experiment harness.

The paper's evaluation (Section 5.1) is sweep-shaped: every figure runs
many policies over the *same* generated problem instances, and repeated
benchmark invocations regenerate those instances from scratch. This
module makes instance generation a cached, content-addressed lookup:

* :func:`instance_key` — a stable SHA-256 hash over every
  ``ExperimentConfig`` field plus the repetition index and trace source.
  Two cells share a key iff they would generate the same instance.
* :class:`InstanceCache` — an in-process LRU keyed on that hash, with an
  optional on-disk store (``<key>.npz`` columns + ``<key>.json``
  manifest) so warm instances survive across processes and benchmark
  invocations. Hit/miss/error counters are exposed for tests and
  reporting; any unreadable or inconsistent disk entry is regenerated
  and rewritten, never silently served.
* module-level configuration (:func:`configure_instances`) and a
  picklable :func:`_pool_worker_init` so ``sweep(workers=N)`` workers
  memoize per-process and share the same disk store.

Cached instances are produced by the fast generation path by default;
the fast path is property-tested to be seed-for-seed identical to the
reference path, so ``fast`` is deliberately *not* part of the cache key.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.profile import Profile, ProfileSet
from repro.experiments.config import ExperimentConfig
from repro.traces.auctions import AuctionTraceSynthesizer
from repro.traces.events import UpdateTrace
from repro.traces.models import PoissonUpdateModel
from repro.workloads.generator import GeneratorConfig, ProfileGenerator

__all__ = [
    "InstanceCache",
    "instance_key",
    "generation_key",
    "generate_instance",
    "configure_instances",
    "active_cache",
    "fast_default",
]

#: Config fields that do not influence instance generation: the budget
#: only constrains the *simulation* and ``repetitions`` only says how
#: many instances a setting draws (each identified by its own repetition
#: index). Cells differing solely in these share generated instances.
_NON_GENERATIVE_FIELDS = ("budget", "repetitions")

#: Bump when the serialized layout or the generation seeding changes —
#: stale on-disk entries from older layouts then miss instead of
#: deserializing garbage.
FORMAT_VERSION = 1


def instance_key(config: ExperimentConfig, repetition: int,
                 source: str) -> str:
    """Content hash identifying one generated problem instance.

    Covers every ``ExperimentConfig`` field (via ``dataclasses.asdict``,
    so newly added fields are picked up automatically), the repetition
    index and the trace source, plus the serialization format version.
    """
    payload = {
        "version": FORMAT_VERSION,
        "source": source,
        "repetition": repetition,
        "config": asdict(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def generation_key(config: ExperimentConfig, repetition: int,
                   source: str) -> str:
    """Content hash of the *generated instance* a cell runs on.

    Like :func:`instance_key` but excluding the config fields that do
    not feed generation (budget, repetitions): two sweep cells that
    differ only in budget map to the same generation key and therefore
    the same (trace, profiles) object. This is the batching key — the
    harness groups cells sharing it into one columnar mega block, and
    the in-memory LRU dedupes on it.
    """
    fields = asdict(config)
    for name in _NON_GENERATIVE_FIELDS:
        fields.pop(name, None)
    payload = {
        "version": FORMAT_VERSION,
        "source": source,
        "repetition": repetition,
        "config": fields,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def generate_instance(config: ExperimentConfig, repetition: int,
                      source: str = "poisson",
                      fast: bool = True) -> tuple[UpdateTrace, ProfileSet]:
    """Generate one (trace, profiles) instance — the uncached path.

    Seeding folds the repetition index into the config seed, so
    instances differ across repetitions but are fully reproducible.
    ``fast`` selects the vectorized generation path (default); the
    reference path produces identical instances and exists for
    equivalence testing and as the benchmark baseline.
    """
    seed = config.seed + 1013 * repetition
    epoch = config.epoch
    resource_ids = list(range(config.num_resources))
    if source == "poisson":
        model = PoissonUpdateModel(config.intensity, seed=seed, fast=fast)
        trace = model.generate(resource_ids, epoch)
    elif source == "auction":
        synthesizer = AuctionTraceSynthesizer(
            config.num_resources, epoch,
            mean_bids=max(1.0, config.intensity), seed=seed, fast=fast)
        trace = synthesizer.generate()
    else:
        raise ValueError(f"unknown trace source {source!r}")
    generator = ProfileGenerator(GeneratorConfig(
        num_profiles=config.num_profiles,
        max_rank=config.max_rank,
        alpha=config.alpha,
        beta=config.beta,
        window=config.window,
        grouping=config.grouping,
        seed=seed + 1,
    ), fast=fast)
    profiles = generator.generate(trace, epoch,
                                  resource_ids=resource_ids)
    return trace, profiles


class InstanceCache:
    """LRU instance cache with an optional on-disk store.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity (instances can be large; the default
        keeps one sweep row's worth).
    cache_dir:
        Optional directory for the persistent store. Created on first
        write. Each entry is a ``<key>.npz`` (trace and EI columns) plus
        a ``<key>.json`` manifest; writes go through a temp file and
        ``os.replace`` so readers never observe a partial entry.

    Attributes
    ----------
    memory_hits / disk_hits / misses / stores / disk_errors:
        Monotonic counters; ``disk_errors`` counts corrupted or
        unreadable entries that were regenerated instead of served.
    """

    def __init__(self, max_entries: int = 8,
                 cache_dir: str | os.PathLike | None = None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._entries: OrderedDict[str, tuple[UpdateTrace, ProfileSet]] \
            = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.disk_errors = 0

    def get_or_generate(self, config: ExperimentConfig, repetition: int,
                        source: str = "poisson",
                        fast: bool = True
                        ) -> tuple[UpdateTrace, ProfileSet]:
        """The instance for a cell — from memory, disk, or generation.

        The in-memory LRU is keyed on :func:`generation_key`, so cells
        that differ only in non-generative fields (budget, repetitions)
        share one entry; the disk store keeps the full
        :func:`instance_key` so stored entries remain exact.
        """
        mem_key = generation_key(config, repetition, source)
        cached = self._entries.get(mem_key)
        if cached is not None:
            self._entries.move_to_end(mem_key)
            self.memory_hits += 1
            return cached
        if self.cache_dir is not None:
            key = instance_key(config, repetition, source)
            instance = self._load(key, config)
            if instance is not None:
                self.disk_hits += 1
                self._remember(mem_key, instance)
                return instance
        self.misses += 1
        instance = generate_instance(config, repetition, source, fast=fast)
        if self.cache_dir is not None:
            self._store(key, config, repetition, source, instance)
        self._remember(mem_key, instance)
        return instance

    def stats(self) -> dict[str, int]:
        """Counter snapshot (for tests and benchmark reports)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "disk_errors": self.disk_errors,
        }

    def clear(self) -> None:
        """Drop the in-memory entries (the disk store is untouched)."""
        self._entries.clear()

    def _remember(self, key: str,
                  instance: tuple[UpdateTrace, ProfileSet]) -> None:
        self._entries[key] = instance
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    # Disk store
    # ------------------------------------------------------------------

    def _paths(self, key: str) -> tuple[Path, Path]:
        return (self.cache_dir / f"{key}.npz",
                self.cache_dir / f"{key}.json")

    def _store(self, key: str, config: ExperimentConfig, repetition: int,
               source: str,
               instance: tuple[UpdateTrace, ProfileSet]) -> None:
        """Serialize one instance; failures are counted, not raised."""
        trace, profiles = instance
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            columns_path, manifest_path = self._paths(key)
            resource_ids, chronons = trace.as_arrays()
            payloads = [event.payload for event in trace] \
                if _has_payloads(trace) else None
            ei_rows = _profile_columns(profiles)
            manifest = {
                "version": FORMAT_VERSION,
                "key": key,
                "source": source,
                "repetition": repetition,
                "config": asdict(config),
                "profile_names": [profile.name for profile in profiles],
                "payloads": payloads,
            }
            with tempfile.NamedTemporaryFile(
                    dir=self.cache_dir, suffix=".npz.tmp",
                    delete=False) as handle:
                np.savez(handle,
                         trace_resource_ids=resource_ids,
                         trace_chronons=chronons,
                         **ei_rows)
                tmp_columns = handle.name
            os.replace(tmp_columns, columns_path)
            with tempfile.NamedTemporaryFile(
                    mode="w", dir=self.cache_dir, suffix=".json.tmp",
                    delete=False) as handle:
                json.dump(manifest, handle)
                tmp_manifest = handle.name
            # The manifest lands last: its presence marks a complete entry.
            os.replace(tmp_manifest, manifest_path)
            self.stores += 1
        except OSError:
            self.disk_errors += 1

    def _load(self, key: str,
              config: ExperimentConfig
              ) -> tuple[UpdateTrace, ProfileSet] | None:
        """Deserialize one instance; any inconsistency yields ``None``.

        Every failure mode — missing columns file, truncated npz,
        malformed JSON, version skew, key mismatch, out-of-range
        chronons (``UpdateTrace.from_columns`` re-validates) — is
        treated as a miss so the instance is regenerated and rewritten.
        """
        columns_path, manifest_path = self._paths(key)
        if not manifest_path.exists():
            return None
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            if (manifest.get("version") != FORMAT_VERSION
                    or manifest.get("key") != key):
                raise ValueError("manifest version/key mismatch")
            with np.load(columns_path) as columns:
                trace = UpdateTrace.from_columns(
                    columns["trace_chronons"],
                    columns["trace_resource_ids"],
                    config.epoch,
                    payloads=manifest.get("payloads"))
                profiles = _profiles_from_columns(
                    columns, manifest["profile_names"])
            return trace, profiles
        except Exception:
            self.disk_errors += 1
            return None


def _has_payloads(trace: UpdateTrace) -> bool:
    """True when any event of the trace carries a payload."""
    return any(event.payload is not None for event in trace)


def _profile_columns(profiles: ProfileSet) -> dict[str, np.ndarray]:
    """Flatten a profile set into parallel EI columns.

    One row per EI: ``(profile, tinterval, resource, start, finish)``.
    Row order is (profile, tinterval, slot) — exactly the order the
    stamped reconstruction in :func:`_profiles_from_columns` walks.
    """
    rows: list[tuple[int, int, int, int, int]] = []
    for profile in profiles:
        for eta in profile:
            for ei in eta:
                rows.append((profile.profile_id, eta.tinterval_id,
                             ei.resource_id, ei.start, ei.finish))
    table = np.asarray(rows, dtype=np.int64).reshape(len(rows), 5)
    return {
        "ei_profile": table[:, 0],
        "ei_tinterval": table[:, 1],
        "ei_resource": table[:, 2],
        "ei_start": table[:, 3],
        "ei_finish": table[:, 4],
    }


def _profiles_from_columns(columns, names: list[str]) -> ProfileSet:
    """Rebuild a ProfileSet from the EI columns of a cache entry.

    Rows are stored in (profile, tinterval, slot) order, so one linear
    pass regroups them; ids are stamped during assembly (positions in
    the columns ARE the ids), making the ``ProfileSet`` attach a no-op.
    """
    ei_profile = columns["ei_profile"].tolist()
    ei_tinterval = columns["ei_tinterval"].tolist()
    ei_resource = columns["ei_resource"].tolist()
    ei_start = columns["ei_start"].tolist()
    ei_finish = columns["ei_finish"].tolist()
    profiles: list[Profile] = []
    tintervals: list[TInterval] = []
    members: list[ExecutionInterval] = []
    for row, profile_id in enumerate(ei_profile):
        while len(profiles) < profile_id:
            _flush_tinterval(tintervals, members, len(profiles))
            profiles.append(Profile.from_stamped(
                tuple(tintervals), len(profiles), names[len(profiles)]))
            tintervals = []
        if ei_tinterval[row] != len(tintervals):
            _flush_tinterval(tintervals, members, profile_id)
        members.append(ExecutionInterval(
            ei_resource[row], ei_start[row], ei_finish[row],
            ei_id=len(members)))
    while len(profiles) < len(names):
        _flush_tinterval(tintervals, members, len(profiles))
        profiles.append(Profile.from_stamped(
            tuple(tintervals), len(profiles), names[len(profiles)]))
        tintervals = []
        members = []
    return ProfileSet(profiles)


def _flush_tinterval(tintervals: list[TInterval],
                     members: list[ExecutionInterval],
                     profile_id: int) -> None:
    """Close the t-interval under assembly, if any, stamping its ids."""
    if members:
        tintervals.append(TInterval.from_stamped(
            tuple(members), tinterval_id=len(tintervals),
            profile_id=profile_id))
        members.clear()


# ----------------------------------------------------------------------
# Module-level configuration (shared by harness, CLI and pool workers)
# ----------------------------------------------------------------------

_ACTIVE_CACHE = InstanceCache()
_FAST_DEFAULT = True


def configure_instances(cache_dir: str | os.PathLike | None = None,
                        fast: bool | None = None,
                        max_entries: int | None = None) -> InstanceCache:
    """(Re)configure the process-wide instance cache and fast default.

    Called by the CLI (``--cache-dir`` / ``--no-fast-gen``) and by pool
    worker initializers; returns the new active cache. Omitted arguments
    keep their current values (``cache_dir=None`` disables the disk
    store, matching the flag's absence).
    """
    global _ACTIVE_CACHE, _FAST_DEFAULT
    if fast is not None:
        _FAST_DEFAULT = fast
    entries = max_entries if max_entries is not None \
        else _ACTIVE_CACHE.max_entries
    _ACTIVE_CACHE = InstanceCache(max_entries=entries, cache_dir=cache_dir)
    return _ACTIVE_CACHE


def active_cache() -> InstanceCache:
    """The process-wide cache consulted by ``make_instance``."""
    return _ACTIVE_CACHE


def fast_default() -> bool:
    """Whether generation defaults to the fast path in this process."""
    return _FAST_DEFAULT


def _pool_worker_init(cache_dir: str | None, fast: bool) -> None:
    """ProcessPoolExecutor initializer: per-worker memoized cache.

    Workers inherit the parent's cache *configuration* (not its
    contents): each worker process memoizes the instances of the cells
    it receives, and a shared ``cache_dir`` lets workers reuse each
    other's stored instances across invocations.
    """
    configure_instances(cache_dir=cache_dir, fast=fast)
