"""Offline solver comparison: Local-Ratio versus the greedy baseline.

The paper's offline contribution (§4.1) is evaluated in the ``P^[1]``
regime with a strict budget (``W = 0``, ``C = 1`` — §5.3/§5.7): this
experiment sweeps the profile count at a chosen scale and reports the
gained completeness and solver runtime of the Local-Ratio approximation
next to the greedy baseline that shares its feasibility machinery — an
ablation isolating the value of the weight decomposition.

Like the online sweeps (``harness.sweep``), the experiment accepts
``workers=N`` to farm (setting, repetition) cells out to a process pool;
instances are regenerated in workers from per-cell seeds and merged in
the serial iteration order, so gained-completeness output is identical to
a serial run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.experiments.config import baseline
from repro.experiments.harness import (
    PolicyOutcome,
    RunOutcome,
    SweepResult,
    make_instance,
)
from repro.offline.greedy import GreedyOfflineSolver
from repro.offline.local_ratio import LocalRatioApproximation

__all__ = ["OFFLINE_SOLVER_LABELS", "offline_comparison"]

#: Solver line-up of the comparison, in presentation order.
OFFLINE_SOLVER_LABELS: tuple[str, ...] = ("local-ratio", "greedy")


def _offline_cell(config, repetition: int, source: str,
                  engine: str) -> dict[str, tuple[float, float]]:
    """One (setting, repetition) cell: both solvers on one instance.

    Module-level (so picklable) and fully determined by its arguments —
    the parallel path regenerates the instance from the seeded config.
    """
    _trace, profiles = make_instance(config, repetition, source=source)
    epoch, budget = config.epoch, config.budget_vector
    local_ratio = LocalRatioApproximation(engine=engine).solve(
        profiles, epoch, budget)
    greedy = GreedyOfflineSolver(fast=engine == "fast").solve(
        profiles, epoch, budget)
    return {
        "local-ratio": (local_ratio.gc, local_ratio.runtime_seconds),
        "greedy": (greedy.gc, greedy.runtime_seconds),
    }


def offline_comparison(scale: str = "default", *,
                       workers: int | None = None,
                       engine: str = "fast",
                       source: str = "poisson") -> SweepResult:
    """Sweep profile count; compare offline solvers on shared instances.

    Parameters
    ----------
    scale:
        Experiment scale ("paper", "default" or "smoke"); the sweep runs
        at 1/4, 1/2 and 1x the scale's baseline profile count.
    workers:
        Process-pool width; ``None`` or 1 runs serially. Results are
        identical either way.
    engine:
        Local-Ratio engine ("fast" or "reference") — schedules are
        identical, so this only matters for the runtime series.
    source:
        Trace source passed through to instance generation.
    """
    base = baseline(scale).with_(window=0, grouping="indexed", budget=1)
    values = sorted({max(1, base.num_profiles // 4),
                     max(1, base.num_profiles // 2),
                     base.num_profiles})
    configs = [base.with_(num_profiles=value) for value in values]
    cells_of: dict[int, list[dict[str, tuple[float, float]]]] = {}
    if workers is not None and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                (setting, repetition): pool.submit(
                    _offline_cell, config, repetition, source, engine)
                for setting, config in enumerate(configs)
                for repetition in range(config.repetitions)
            }
            for setting, config in enumerate(configs):
                cells_of[setting] = [
                    futures[(setting, repetition)].result()
                    for repetition in range(config.repetitions)
                ]
    else:
        for setting, config in enumerate(configs):
            cells_of[setting] = [
                _offline_cell(config, repetition, source, engine)
                for repetition in range(config.repetitions)
            ]

    runs = []
    for setting, config in enumerate(configs):
        outcomes = {}
        for label in OFFLINE_SOLVER_LABELS:
            gc_values = tuple(cell[label][0]
                              for cell in cells_of[setting])
            runtime_values = tuple(cell[label][1]
                                   for cell in cells_of[setting])
            outcomes[label] = PolicyOutcome(label, gc_values,
                                            runtime_values)
        runs.append(RunOutcome(config=config, outcomes=outcomes))
    return SweepResult(name=f"offline-comparison-{scale}",
                       parameter="num_profiles",
                       x_values=tuple(values), runs=tuple(runs))
