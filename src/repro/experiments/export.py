"""Exporting experiment results to files (CSV series + markdown summary).

The benchmark harness and CLI can persist every figure's series so that
EXPERIMENTS.md (and downstream analysis) works from files rather than
scraped terminal output.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path

from repro.experiments.churn import ChurnSweep
from repro.experiments.federation import FederationSweep
from repro.experiments.figures import FigurePair
from repro.experiments.harness import RunOutcome, SweepResult
from repro.experiments.reporting import render_table, sweep_csv, sweep_table

__all__ = ["export_churn", "export_federation", "export_result",
           "export_run_outcome", "export_sweep"]


def export_churn(result: ChurnSweep, directory: str | Path,
                 stem: str) -> list[Path]:
    """Write the churn scenario series CSV plus a config dump."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    lines = ["join_spread,leave_probability,completeness,"
             "mean_client_completeness,fairness,completed,expired,"
             "dropped,probes_used,runtime_s"]
    for row in result.rows:
        lines.append(
            f"{row.join_spread:.2f},{row.leave_probability:.2f},"
            f"{row.completeness:.6f},"
            f"{row.mean_client_completeness:.6f},{row.fairness:.6f},"
            f"{row.completed},{row.expired},{row.dropped},"
            f"{row.probes_used},{row.runtime_seconds:.6f}")
    csv_path = directory / f"{stem}.csv"
    csv_path.write_text("\n".join(lines) + "\n")
    config_path = directory / f"{stem}_config.txt"
    config_rows = [("engine", result.engine)] + [
        (field, str(value))
        for field, value in asdict(result.config).items()
        if field not in ("join_spread", "leave_probability")
    ]
    config_path.write_text(render_table(
        ["parameter", "value"], config_rows,
        title=f"{stem} configuration") + "\n")
    return [csv_path, config_path]


def export_federation(result: FederationSweep, directory: str | Path,
                      stem: str) -> list[Path]:
    """Write the shard-count series CSV plus a config dump."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    lines = ["setting,mean_gc,gc_degradation,mean_runtime_s,speedup,"
             "stolen_budget,steal_transfers",
             f"monolith,{result.monolith.mean_gc:.6f},0.000000,"
             f"{result.monolith.mean_runtime:.6f},1.000,0,0"]
    for outcome in result.outcomes:
        lines.append(
            f"K={outcome.shards},{outcome.mean_gc:.6f},"
            f"{result.degradation(outcome.shards):.6f},"
            f"{outcome.mean_runtime:.6f},"
            f"{result.speedup(outcome.shards):.3f},"
            f"{outcome.stolen_budget},{outcome.steal_transfers}")
    csv_path = directory / f"{stem}.csv"
    csv_path.write_text("\n".join(lines) + "\n")
    config_path = directory / f"{stem}_config.txt"
    config_path.write_text(render_table(
        ["parameter", "value"], result.config.describe(),
        title=f"{stem} configuration") + "\n")
    return [csv_path, config_path]


def export_sweep(result: SweepResult, directory: str | Path,
                 stem: str, metrics: tuple[str, ...] = ("gc",)
                 ) -> list[Path]:
    """Write one CSV per metric plus a text table; returns written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for metric in metrics:
        csv_path = directory / f"{stem}_{metric}.csv"
        csv_path.write_text(sweep_csv(result, metric=metric))
        written.append(csv_path)
        table_path = directory / f"{stem}_{metric}.txt"
        table_path.write_text(sweep_table(result, metric=metric) + "\n")
        written.append(table_path)
    return written


def export_run_outcome(outcome: RunOutcome, directory: str | Path,
                       stem: str) -> list[Path]:
    """Write a policy-summary CSV + text table + config dump."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    rows = [
        [label, policy.mean_gc, policy.stdev_gc, policy.mean_runtime]
        for label, policy in outcome.outcomes.items()
    ]
    csv_lines = ["policy,mean_gc,stdev_gc,mean_runtime_s"]
    csv_lines += [f"{label},{gc:.6f},{stdev:.6f},{runtime:.6f}"
                  for label, gc, stdev, runtime in rows]
    csv_path = directory / f"{stem}.csv"
    csv_path.write_text("\n".join(csv_lines) + "\n")

    table_path = directory / f"{stem}.txt"
    table_path.write_text(render_table(
        ["policy", "mean GC", "stdev", "runtime (s)"], rows,
        title=stem) + "\n")

    config_path = directory / f"{stem}_config.txt"
    config_path.write_text(render_table(
        ["parameter", "value"], outcome.config.describe(),
        title=f"{stem} configuration") + "\n")
    return [csv_path, table_path, config_path]


def export_result(name: str, result: object,
                  directory: str | Path) -> list[Path]:
    """Dispatch on the result type (RunOutcome / SweepResult / pair)."""
    if isinstance(result, ChurnSweep):
        return export_churn(result, directory, name)
    if isinstance(result, FederationSweep):
        return export_federation(result, directory, name)
    if isinstance(result, RunOutcome):
        return export_run_outcome(result, directory, name)
    if isinstance(result, SweepResult):
        metrics = ("gc", "runtime")
        return export_sweep(result, directory, name, metrics=metrics)
    if isinstance(result, FigurePair):
        written = export_sweep(result.left, directory, f"{name}_panel1",
                               metrics=("gc", "runtime"))
        written += export_sweep(result.right, directory, f"{name}_panel2",
                                metrics=("gc", "runtime"))
        return written
    raise TypeError(f"cannot export result of type {type(result)!r}")
