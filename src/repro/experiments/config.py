"""Experiment configuration (the paper's Table 1).

The provided paper text references Table 1 ("controlled parameters and
baseline parameter settings") without reproducing the table body, so the
baseline below is assembled from the values Section 5 states explicitly:

* ``K = 1000`` chronons (§5.1: "for a given K = 1000 chronons");
* 400 auction resources and ``window = 20`` (§5.2, Figure 3);
* ``rank(P) = 3`` (AuctionWatch(3), §5.2);
* ``C = 1`` ("So far we have used a strict budgetary allocation of
  C = 1", §5.7);
* ``lambda = 20`` for small workloads, 50 for large (§5.4);
* ``alpha = beta = 0`` unless swept (§5.6 sweeps them; §5.1 notes
  ``alpha = 1.37`` matches observed Web-feed popularity);
* 10 repetitions per setting (§5.1).

``m = 500`` profiles is the one inferred value (the paper sweeps
100-2500); DESIGN.md §4 records this substitution.

Three scales are provided: ``paper`` (full Table-1 values), ``default``
(reduced sizes for the benchmark suite) and ``smoke`` (tiny, for tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

from repro.core.budget import BudgetVector
from repro.core.timeline import Epoch

__all__ = ["ExperimentConfig", "baseline", "SCALES"]

Scale = Literal["paper", "default", "smoke"]


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """One experimental setting (a row of parameter choices).

    Attributes mirror the paper's controlled parameters; see module
    docstring for provenance.
    """

    epoch_length: int = 1000
    num_resources: int = 400
    num_profiles: int = 500
    max_rank: int = 3
    intensity: float = 20.0
    alpha: float = 0.0
    beta: float = 0.0
    budget: int = 1
    window: int | None = 20
    grouping: str = "overlap"
    repetitions: int = 10
    seed: int = 20080407  # ICDE 2008 :-)

    def __post_init__(self) -> None:
        if self.epoch_length < 1:
            raise ValueError("epoch_length must be >= 1")
        if self.num_resources < 1:
            raise ValueError("num_resources must be >= 1")
        if self.num_profiles < 0:
            raise ValueError("num_profiles must be >= 0")
        if self.max_rank < 1:
            raise ValueError("max_rank must be >= 1")
        if self.intensity < 0:
            raise ValueError("intensity must be >= 0")
        if self.budget < 0:
            raise ValueError("budget must be >= 0")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    @property
    def epoch(self) -> Epoch:
        """The epoch object for this configuration."""
        return Epoch(self.epoch_length)

    @property
    def budget_vector(self) -> BudgetVector:
        """Constant per-chronon budget vector."""
        return BudgetVector(self.budget)

    def with_(self, **changes) -> "ExperimentConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> list[tuple[str, str]]:
        """(parameter, value) pairs for Table-1-style reporting."""
        window = "overwrite" if self.window is None else str(self.window)
        return [
            ("epoch length K", str(self.epoch_length)),
            ("resources n", str(self.num_resources)),
            ("profiles m", str(self.num_profiles)),
            ("rank(P) k", str(self.max_rank)),
            ("update intensity lambda", f"{self.intensity:g}"),
            ("inter-user pref alpha", f"{self.alpha:g}"),
            ("intra-user pref beta", f"{self.beta:g}"),
            ("budget C", str(self.budget)),
            ("window W", window),
            ("grouping", self.grouping),
            ("repetitions", str(self.repetitions)),
            ("seed", str(self.seed)),
        ]


#: Per-scale baseline configurations. "paper" matches Table 1 (with the one
#: inferred value m = 500); the smaller scales shrink every axis while
#: preserving the regime (budget scarcity, overlap rates).
SCALES: dict[Scale, ExperimentConfig] = {
    "paper": ExperimentConfig(),
    "default": ExperimentConfig(
        epoch_length=400,
        num_resources=160,
        num_profiles=200,
        intensity=12.0,
        repetitions=3,
    ),
    "smoke": ExperimentConfig(
        epoch_length=80,
        num_resources=16,
        num_profiles=40,
        intensity=12.0,
        window=6,
        repetitions=2,
    ),
}


def baseline(scale: Scale = "default") -> ExperimentConfig:
    """The baseline configuration at a given scale."""
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None
