"""Online monitoring policies (Section 4.2 of the paper)."""

from repro.online.base import (
    Candidate,
    Policy,
    PolicyLevel,
    ProbeDecision,
    TIntervalState,
    apply_probes,
    filter_blocked,
    select_probes,
)
from repro.online.baselines import (
    CoveragePolicy,
    FCFSPolicy,
    LeastFlexibleFirstPolicy,
    MostResidualFirstPolicy,
    RandomPolicy,
    StaticRankPolicy,
)
from repro.online.medf import MEDFPolicy, m_edf_value
from repro.online.mrsf import MRSFPolicy, mrsf_value
from repro.online.registry import (
    available_policies,
    make_policy,
    parse_policy_spec,
)
from repro.online.sedf import SEDFPolicy, s_edf_value

__all__ = [
    "Candidate",
    "CoveragePolicy",
    "FCFSPolicy",
    "LeastFlexibleFirstPolicy",
    "MEDFPolicy",
    "MRSFPolicy",
    "MostResidualFirstPolicy",
    "Policy",
    "PolicyLevel",
    "ProbeDecision",
    "RandomPolicy",
    "StaticRankPolicy",
    "SEDFPolicy",
    "TIntervalState",
    "apply_probes",
    "available_policies",
    "make_policy",
    "m_edf_value",
    "mrsf_value",
    "parse_policy_spec",
    "s_edf_value",
    "filter_blocked",
    "select_probes",
]
