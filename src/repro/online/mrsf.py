"""MRSF — Minimal Residual Stub First (rank level).

The paper's representative of the *rank level* class: the policy prefers
EIs whose parent t-interval has the fewest EIs left to capture:

    ``MRSF(I) = rank(p) - sum_{I' in eta} I(I', S)``

i.e. the profile's rank minus the number of already-captured siblings.
Intuition: a t-interval with fewer remaining stubs has a higher probability
of completing, so the budget spent on it is less likely to be wasted.

Proposition 4: without intra-resource overlap and with ``rank(P) = k``,
MRSF is k-competitive.
"""

from __future__ import annotations

from repro.core.timeline import Chronon
from repro.online.base import RANK_LEVEL, Candidate, Policy

__all__ = ["MRSFPolicy", "mrsf_value"]


def mrsf_value(profile_rank: int, captured_count: int) -> float:
    """The MRSF score of an EI given its parent state (lower = better)."""
    return float(profile_rank - captured_count)


class MRSFPolicy(Policy):
    """Prefer EIs of t-intervals closest to completion."""

    name = "MRSF"
    level = RANK_LEVEL

    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        state = candidate.state
        return mrsf_value(state.profile_rank, state.captured_count)
