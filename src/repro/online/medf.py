"""M-EDF — Multi-Interval Earliest Deadline First (multi-EIs level).

The paper's representative of the *multi-EIs level* class: the policy uses
all sibling information of the parent t-interval:

    ``M-EDF(I, T) = sum_{I' in eta} S-EDF(I', T) * (1 - I(I', S))``

— the sum of EDF values of the uncaptured siblings (including ``I``
itself), where a sibling that is not yet active (``T < I'.T_s``) has its
EDF value taken at ``T = 0`` (i.e. its absolute deadline). A t-interval
with fewer total remaining chronons has less chance to collide with other
t-intervals later, so probing it first loses less.

Proposition 5: on ``P^[1]`` instances M-EDF is equivalent to MRSF (every
uncaptured sibling contributes the same unit of remaining width, so both
scores order candidates identically).
"""

from __future__ import annotations

from repro.core.timeline import Chronon
from repro.online.base import MULTI_EI_LEVEL, Candidate, Policy, TIntervalState
from repro.online.sedf import s_edf_value

__all__ = ["MEDFPolicy", "m_edf_value"]


def m_edf_value(state: TIntervalState, chronon: Chronon) -> float:
    """Sum of EDF values of the uncaptured EIs of a t-interval."""
    total = 0.0
    for ei in state.eta:
        if state.captured[ei.ei_id]:
            continue
        if chronon < ei.start:
            # Sibling not yet active: the paper evaluates its EDF with T=0.
            total += s_edf_value(ei, 0)
        else:
            total += s_edf_value(ei, chronon)
    return total


class MEDFPolicy(Policy):
    """Prefer t-intervals with the least total remaining deadline slack."""

    name = "M-EDF"
    level = MULTI_EI_LEVEL

    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        return m_edf_value(candidate.state, chronon)
