"""Baseline online policies (not from the paper; sanity anchors).

These give the experiment harness cheap lower/upper sanity bounds:

* :class:`RandomPolicy` — uniformly random priorities (seeded);
* :class:`FCFSPolicy` — first-come-first-served on EI start chronons;
* :class:`LeastFlexibleFirstPolicy` — prefer EIs with the least slack
  *width* remaining (a deadline-density heuristic distinct from S-EDF);
* :class:`CoveragePolicy` — prefer resources whose probe would capture the
  most candidate EIs right now (greedy set-cover flavor; exploits
  intra-resource overlap explicitly).

The paper's claims are about S-EDF / MRSF / M-EDF; these baselines exist to
show the proposed heuristics beat naive strategies, and they are used in
the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.core.timeline import Chronon
from repro.online.base import EI_LEVEL, MULTI_EI_LEVEL, Candidate, Policy

__all__ = [
    "RandomPolicy",
    "FCFSPolicy",
    "LeastFlexibleFirstPolicy",
    "CoveragePolicy",
    "StaticRankPolicy",
    "MostResidualFirstPolicy",
]


class RandomPolicy(Policy):
    """Uniformly random priorities; deterministic given the seed.

    The score depends only on the candidate's identity and the chronon, so
    repeated scoring within one selection round is stable.
    """

    name = "Random"
    level = EI_LEVEL

    def __init__(self, seed: int | None = None) -> None:
        self._seed = 0 if seed is None else int(seed)

    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        key = (self._seed, chronon, candidate.state.eta.profile_id,
               candidate.state.eta.tinterval_id, candidate.ei.ei_id,
               candidate.ei.resource_id, candidate.ei.start,
               candidate.ei.finish)
        rng = np.random.default_rng(abs(hash(key)) % (2**32))
        return float(rng.random())


class FCFSPolicy(Policy):
    """First come, first served: earlier-starting EIs first."""

    name = "FCFS"
    level = EI_LEVEL

    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        return float(candidate.ei.start)


class LeastFlexibleFirstPolicy(Policy):
    """Prefer EIs with the smallest remaining window width.

    Unlike S-EDF (absolute deadline), this scores the number of remaining
    *opportunities* to capture the EI.
    """

    name = "LFF"
    level = EI_LEVEL

    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        remaining = candidate.ei.finish - max(chronon, candidate.ei.start) + 1
        return float(remaining)


class StaticRankPolicy(Policy):
    """Rank-level policy that ignores capture progress.

    Scores by the *static* profile rank (simpler profiles first) without
    tracking how many sibling EIs are already captured. The gap between
    this and MRSF isolates the value of residual-awareness — the part of
    MRSF that actually reacts to the run.
    """

    name = "StaticRank"
    level = "rank"

    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        return float(candidate.state.profile_rank)


class MostResidualFirstPolicy(Policy):
    """Anti-MRSF: prefer t-intervals with the MOST EIs left.

    The pedagogical lower bound for the rank level — it spreads budget
    across barely-started t-intervals and should complete few of them.
    """

    name = "anti-MRSF"
    level = "rank"

    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        state = candidate.state
        return -float(state.profile_rank - state.captured_count)


class CoveragePolicy(Policy):
    """Prefer resources that capture many candidate EIs in one probe.

    Stateful per chronon: the simulator calls :meth:`observe_candidates`
    before scoring so the policy can count active EIs per resource.
    """

    name = "Coverage"
    level = MULTI_EI_LEVEL

    def __init__(self) -> None:
        self._counts: dict[int, int] = {}
        self._counted_chronon: Chronon | None = None

    def observe_candidates(self, candidates: list[Candidate],
                           chronon: Chronon) -> None:
        """Recount active EIs per resource for the current chronon."""
        self._counts = {}
        self._counted_chronon = chronon
        for candidate in candidates:
            resource_id = candidate.ei.resource_id
            self._counts[resource_id] = self._counts.get(resource_id, 0) + 1

    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        # More coverage = better = lower score.
        coverage = self._counts.get(candidate.ei.resource_id, 1)
        return -float(coverage)
