"""Name-based policy registry.

The experiment harness and CLI refer to policies by the paper's names
("S-EDF", "MRSF", "M-EDF", optionally with a "(P)"/"(NP)" suffix).
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import WorkloadError
from repro.online.base import Policy
from repro.online.baselines import (
    CoveragePolicy,
    FCFSPolicy,
    LeastFlexibleFirstPolicy,
    MostResidualFirstPolicy,
    RandomPolicy,
    StaticRankPolicy,
)
from repro.online.medf import MEDFPolicy
from repro.online.mrsf import MRSFPolicy
from repro.online.sedf import SEDFPolicy

__all__ = ["make_policy", "parse_policy_spec", "available_policies"]

_FACTORIES: dict[str, Callable[[], Policy]] = {
    "S-EDF": SEDFPolicy,
    "MRSF": MRSFPolicy,
    "M-EDF": MEDFPolicy,
    "RANDOM": RandomPolicy,
    "FCFS": FCFSPolicy,
    "LFF": LeastFlexibleFirstPolicy,
    "COVERAGE": CoveragePolicy,
    "STATICRANK": StaticRankPolicy,
    "ANTI-MRSF": MostResidualFirstPolicy,
}


def available_policies() -> list[str]:
    """Canonical policy names accepted by :func:`make_policy`."""
    return sorted(_FACTORIES)


def make_policy(name: str) -> Policy:
    """Instantiate a policy by canonical name (case-insensitive).

    Raises
    ------
    WorkloadError
        For unknown policy names.
    """
    factory = _FACTORIES.get(name.upper().replace("SEDF", "S-EDF")
                             .replace("MEDF", "M-EDF"))
    if factory is None:
        raise WorkloadError(
            f"unknown policy {name!r}; available: {available_policies()}"
        )
    return factory()


def parse_policy_spec(spec: str) -> tuple[Policy, bool]:
    """Parse a display spec like ``"MRSF(P)"`` into (policy, preemptive).

    A bare name (no suffix) defaults to preemptive, matching the dominant
    configuration in the paper's plots.
    """
    spec = spec.strip()
    preemptive = True
    if spec.endswith("(NP)"):
        preemptive = False
        spec = spec[:-4]
    elif spec.endswith("(P)"):
        spec = spec[:-3]
    return make_policy(spec.strip()), preemptive
