"""Online policy framework.

Section 4.2 of the paper: at every chronon the proxy sees the candidate
t-intervals (``cands(eta)``) — those that arrived, are not yet fully
captured, and can still complete — and their candidate EIs (``cands(I)``).
A *policy* scores candidate EIs and the proxy probes the resources of the
best-scored EIs, up to the chronon's budget.

This module provides:

* :class:`TIntervalState` — mutable capture-tracking wrapper around an
  immutable :class:`~repro.core.intervals.TInterval`;
* :class:`Candidate` — one probe-able (state, EI) pair;
* :class:`Policy` — the scoring interface the three heuristics implement;
* :func:`select_probes` — budgeted, preemption-aware greedy selection,
  shared by the simulator and by tests.

Scores are *lower-is-better*; ties break deterministically on
``(deadline, start, resource id, profile id, t-interval id)``.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.timeline import Chronon

__all__ = [
    "Candidate",
    "Policy",
    "PolicyLevel",
    "TIntervalState",
    "filter_blocked",
    "select_probes",
]

# The paper's three-level classification of online policies (§4.2.2).
PolicyLevel = str
EI_LEVEL: PolicyLevel = "ei"
RANK_LEVEL: PolicyLevel = "rank"
MULTI_EI_LEVEL: PolicyLevel = "multi-ei"


class TIntervalState:
    """Mutable runtime state of one candidate t-interval.

    Tracks which EIs are captured, whether the t-interval was ever selected
    by the policy (``committed`` — drives non-preemptive behaviour), and
    caches the owning profile's rank (the MRSF score needs it).

    Capture progress is tracked with counters and a lazily advanced
    earliest-uncaptured-deadline cursor, so ``captured_count``,
    ``is_complete`` and ``is_expired`` are O(1) (amortized) instead of
    scanning ``eta`` — these run once per state per chronon in the
    simulator's hot loop. The invariant is that every capture goes through
    :meth:`mark_captured`; writing ``captured[i]`` directly desyncs the
    counters.
    """

    __slots__ = ("eta", "profile_rank", "captured", "committed",
                 "_captured_count", "_deadline_order", "_deadline_pos")

    def __init__(self, eta: TInterval, profile_rank: int) -> None:
        self.eta = eta
        self.profile_rank = profile_rank
        self.captured = [False] * len(eta)
        self.committed = False
        self._captured_count = 0
        # EIs ordered by deadline; the cursor skips captured ones lazily.
        # Built on first expiry query — many t-intervals complete without
        # ever being asked for their earliest uncaptured deadline.
        self._deadline_order: list[int] | None = None
        self._deadline_pos = 0

    @property
    def key(self) -> tuple[int, int]:
        """Stable identity ``(profile_id, tinterval_id)``."""
        return (self.eta.profile_id, self.eta.tinterval_id)

    @property
    def captured_count(self) -> int:
        """Number of already-captured EIs (``sum I(I', S)`` over siblings)."""
        return self._captured_count

    @property
    def residual(self) -> int:
        """Number of EIs still to capture."""
        return len(self.captured) - self._captured_count

    @property
    def is_complete(self) -> bool:
        """True when every EI has been captured (the t-interval counts)."""
        return self._captured_count == len(self.captured)

    @property
    def earliest_uncaptured_deadline(self) -> Chronon | None:
        """Smallest ``finish`` over uncaptured EIs; None when complete."""
        order = self._deadline_order
        if order is None:
            eta = self.eta
            order = self._deadline_order = sorted(
                range(len(eta)), key=lambda i: eta[i].finish)
        pos = self._deadline_pos
        captured = self.captured
        while pos < len(order) and captured[order[pos]]:
            pos += 1
        self._deadline_pos = pos
        if pos == len(order):
            return None
        return self.eta[order[pos]].finish

    def is_expired(self, chronon: Chronon) -> bool:
        """True when some uncaptured EI's deadline has passed.

        An expired t-interval can never complete and is dropped from the
        candidate set (it still counts in the GC denominator).
        """
        deadline = self.earliest_uncaptured_deadline
        return deadline is not None and chronon > deadline

    def uncaptured_eis(self) -> list[ExecutionInterval]:
        """EIs not yet captured, in declaration order."""
        return [ei for ei in self.eta if not self.captured[ei.ei_id]]

    def probeable_eis(self, chronon: Chronon) -> list[ExecutionInterval]:
        """Uncaptured EIs whose window contains ``chronon``."""
        return [ei for ei in self.eta
                if not self.captured[ei.ei_id] and ei.active_at(chronon)]

    def mark_captured(self, ei_id: int) -> None:
        """Record the capture of one EI (idempotent)."""
        if not self.captured[ei_id]:
            self.captured[ei_id] = True
            self._captured_count += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TIntervalState(key={self.key}, "
                f"captured={self.captured_count}/{len(self.captured)}, "
                f"committed={self.committed})")


@dataclass(frozen=True, slots=True)
class Candidate:
    """One probe-able (t-interval state, EI) pair at the current chronon."""

    state: TIntervalState
    ei: ExecutionInterval


class Policy(ABC):
    """Scores candidate EIs; the proxy probes the lowest-scored ones.

    Subclasses are stateless — all decision inputs come from the candidate
    and the chronon — which is what makes the policies cheap (§4.2.1).
    """

    #: Short name used in reports ("S-EDF", "MRSF", "M-EDF", ...).
    name: str = "?"
    #: Information level per the paper's classification.
    level: PolicyLevel = EI_LEVEL

    @abstractmethod
    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        """Priority of probing this candidate now; lower is better."""

    def observe_candidates(self, candidates: Sequence[Candidate],
                           chronon: Chronon) -> None:
        """Hook called once per chronon with the full candidate bag.

        The default is a no-op; stateful policies (e.g.
        :class:`~repro.online.baselines.CoveragePolicy`) override it to
        precompute per-chronon aggregates before :meth:`score` is asked
        about individual candidates. Both proxies call this right before
        selection, so custom policies need no simulator changes.
        """

    def label(self, preemptive: bool) -> str:
        """Display name with the paper's (P)/(NP) suffix convention."""
        return f"{self.name}({'P' if preemptive else 'NP'})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def filter_blocked(candidates: Sequence[Candidate], breaker,
                   chronon: Chronon) -> Sequence[Candidate]:
    """Drop candidates whose resource a circuit breaker has quarantined.

    ``breaker`` is duck-typed (anything with ``is_blocked(resource_id,
    chronon)``, see :class:`repro.faults.CircuitBreaker`); ``None``
    returns the candidates unchanged. Shared by the simulator and the
    runtime proxy so both starve quarantined resources identically.
    """
    if breaker is None:
        return candidates
    # Probe the breaker once per distinct resource; with nothing blocked
    # (the common healthy case) the input sequence is returned as-is,
    # avoiding a per-chronon list re-allocation.
    blocked = {resource_id
               for resource_id in {c.ei.resource_id for c in candidates}
               if breaker.is_blocked(resource_id, chronon)}
    if not blocked:
        return candidates
    return [candidate for candidate in candidates
            if candidate.ei.resource_id not in blocked]


def _tie_break(candidate: Candidate, chronon: Chronon
               ) -> tuple[int, int, int, int, int]:
    ei = candidate.ei
    return (ei.finish - chronon, ei.start, ei.resource_id,
            candidate.state.eta.profile_id, candidate.state.eta.tinterval_id)


@dataclass(frozen=True, slots=True)
class ProbeDecision:
    """One probe the policy decided on: the resource and the EI that won it.

    The ``selected`` candidate is the best-ranked EI on the probed
    resource — the EI the policy "returned" in the paper's terms. Its
    t-interval becomes *committed* (drives non-preemptive priority);
    other EIs captured by the same probe are free riders and do not.
    """

    resource_id: int
    selected: Candidate


def select_probes(policy: Policy, candidates: Sequence[Candidate],
                  chronon: Chronon, budget: int,
                  preemptive: bool) -> list[ProbeDecision]:
    """Choose up to ``budget`` resources to probe at ``chronon``.

    A probe targets one *resource* and captures every active candidate EI
    on it, so selection aggregates candidates by resource: a resource's
    priority is the best (lowest) policy score among its candidate EIs,
    then the most urgent deadline, then the number of candidate EIs the
    probe would serve (coverage). Coverage tie-breaking is what makes
    every policy per-chronon-optimal on rank-1 / unit-width workloads —
    the property §5.3 of the paper relies on ("for rank(P) = 1 the gained
    completeness ... is optimal").

    Non-preemptive mode (§4.2.1) runs two passes: EIs of previously
    *committed* t-intervals first, then — with leftover budget only —
    EIs of t-intervals the policy has not yet selected.

    Returns at most ``budget`` probe decisions (distinct resources).
    """
    if budget <= 0 or not candidates:
        return []
    if preemptive:
        pools: list[Sequence[Candidate]] = [candidates]
    else:
        committed = [c for c in candidates if c.state.committed]
        fresh = [c for c in candidates if not c.state.committed]
        pools = [committed, fresh]

    decisions: list[ProbeDecision] = []
    chosen_set: set[int] = set()
    for pool in pools:
        if len(decisions) >= budget:
            break
        by_resource: dict[int, list[tuple]] = {}
        for candidate in pool:
            # (policy score, deadline urgency, start, ids) per candidate;
            # a resource inherits the best of its candidates.
            entry = (policy.score(candidate, chronon),
                     *_tie_break(candidate, chronon), candidate)
            by_resource.setdefault(candidate.ei.resource_id,
                                   []).append(entry)
        # A resource's rank: its best candidate's (score, deadline), then
        # how many candidate EIs the probe would serve, then identity.
        best_of: dict[int, tuple] = {
            resource_id: min(entries, key=lambda entry: entry[:-1])
            for resource_id, entries in by_resource.items()
        }
        # Only the best `budget` resources can win (plus room for those
        # already chosen by the previous pool), so an O(R log budget)
        # partial selection replaces the full sort. heapq.nsmallest is
        # documented as equivalent to sorted(...)[:n], so ranking is
        # unchanged.
        needed = budget - len(decisions) + len(chosen_set)
        ranked = heapq.nsmallest(
            needed, by_resource,
            key=lambda resource_id: (best_of[resource_id][0],
                                     best_of[resource_id][1],
                                     -len(by_resource[resource_id]),
                                     best_of[resource_id][2:-1]),
        )
        for resource_id in ranked:
            if resource_id in chosen_set:
                continue
            if len(decisions) >= budget:
                break
            decisions.append(ProbeDecision(
                resource_id=resource_id,
                selected=best_of[resource_id][-1]))
            chosen_set.add(resource_id)
    return decisions


def apply_probes(decisions: Sequence[ProbeDecision],
                 candidates: Sequence[Candidate],
                 chronon: Chronon) -> list[Candidate]:
    """Mark every candidate EI captured by the decided probes.

    All active EIs on a probed resource are captured — this is where
    intra-resource overlap pays off. Every t-interval that receives a
    capture (selected or free-rider) becomes *committed*: the proxy has
    invested probes in it, which is what the non-preemptive mode protects
    (this broad commitment reproduces the paper's reported P-vs-NP gaps;
    see DESIGN.md). Returns the candidates that were captured.
    """
    probed = {decision.resource_id for decision in decisions}
    captured: list[Candidate] = []
    for candidate in candidates:
        ei = candidate.ei
        if ei.resource_id in probed and ei.active_at(chronon):
            if not candidate.state.captured[ei.ei_id]:
                candidate.state.mark_captured(ei.ei_id)
                candidate.state.committed = True
                captured.append(candidate)
    for decision in decisions:
        decision.selected.state.committed = True
    return captured
