"""S-EDF — Single-interval Earliest Deadline First (EI level).

The paper's representative of the *EI level* class: the policy looks at one
execution interval at a time and prefers the one whose deadline is nearest:

    ``S-EDF(I, T) = I.T_f - T``   (remaining chronons to the deadline)

EDF is optimal for the degenerate case of individual execution intervals
(rank-1 profiles) and serves as the baseline the richer policies are
compared against (§4.2.2, Proposition 3 territory).
"""

from __future__ import annotations

from repro.core.intervals import ExecutionInterval
from repro.core.timeline import Chronon
from repro.online.base import EI_LEVEL, Candidate, Policy

__all__ = ["SEDFPolicy", "s_edf_value"]


def s_edf_value(ei: ExecutionInterval, chronon: Chronon) -> float:
    """Remaining chronons until the EI's deadline.

    For an EI that is not yet active the paper evaluates the EDF value
    "with T = 0", i.e. the absolute deadline; callers pass ``chronon = 0``
    to get that behaviour (used by M-EDF for inactive siblings).
    """
    return float(ei.finish - chronon)


class SEDFPolicy(Policy):
    """Earliest-deadline-first over individual execution intervals."""

    name = "S-EDF"
    level = EI_LEVEL

    def score(self, candidate: Candidate, chronon: Chronon) -> float:
        return s_edf_value(candidate.ei, chronon)
