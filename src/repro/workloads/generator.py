"""The paper's three-stage synthetic profile generator (Section 5.1).

Given ``rank(P) = k`` and ``n`` resources, each of ``m`` profiles is built
in three stages:

1. **Rank selection** — the profile's rank is drawn from ``Zipf(beta, k)``
   (*intra-user* preference: positive ``beta`` favors simpler profiles;
   ``beta = 0`` is uniform on ``{1..k}``).
2. **Resource selection** — the profile's resources are drawn (distinct)
   from ``Zipf(alpha, n)`` (*inter-user* preference: positive ``alpha``
   concentrates on popular resources; the paper cites ``alpha = 1.37`` for
   Web feeds).
3. **t-interval generation** — a profile template (default AuctionWatch)
   instantiates t-intervals from the update trace under a delivery
   restriction (overwrite or window(W)).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.errors import WorkloadError
from repro.core.profile import Profile, ProfileSet
from repro.core.timeline import Epoch
from repro.traces.events import UpdateTrace
from repro.workloads.restrictions import (
    DeliveryRestriction,
    OverwriteRestriction,
    WindowRestriction,
)
from repro.workloads.templates import AuctionWatchTemplate, ProfileTemplate
from repro.workloads.zipf import BoundedZipf

__all__ = ["GeneratorConfig", "ProfileGenerator"]


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Knobs of the three-stage generator (Table 1's controlled parameters).

    Attributes
    ----------
    num_profiles:
        ``m`` — number of profiles to generate.
    max_rank:
        ``k = rank(P)`` — the upper bound on per-profile rank.
    alpha:
        Inter-user (resource popularity) Zipf exponent.
    beta:
        Intra-user (profile complexity) Zipf exponent.
    window:
        Window size ``W`` for the window restriction; ``None`` selects the
        overwrite restriction instead.
    grouping:
        t-interval grouping strategy for the AuctionWatch template.
    seed:
        RNG seed; generation is fully deterministic given the seed.
    """

    num_profiles: int
    max_rank: int
    alpha: float = 0.0
    beta: float = 0.0
    window: int | None = 20
    grouping: str = "indexed"
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.num_profiles < 0:
            raise WorkloadError(
                f"num_profiles must be >= 0, got {self.num_profiles}"
            )
        if self.max_rank < 1:
            raise WorkloadError(f"max_rank must be >= 1, got {self.max_rank}")
        if self.alpha < 0 or self.beta < 0:
            raise WorkloadError("alpha and beta must be >= 0")
        if self.window is not None and self.window < 0:
            raise WorkloadError(f"window must be >= 0, got {self.window}")

    def restriction(self) -> DeliveryRestriction:
        """The delivery restriction implied by the config."""
        if self.window is None:
            return OverwriteRestriction()
        return WindowRestriction(self.window)


class _UniformBuffer:
    """Chunked ``rng.random`` draws, handed out one slice at a time.

    numpy array fills consume the uniform stream exactly as sequential
    scalar ``rng.random()`` calls do, so reading slices off a refilled
    buffer is indistinguishable — variate for variate — from the
    reference generator's one-draw-at-a-time pattern.
    """

    __slots__ = ("_rng", "_chunk", "_buffer", "_position")

    def __init__(self, rng: np.random.Generator, chunk: int = 512) -> None:
        self._rng = rng
        self._chunk = chunk
        self._buffer = rng.random(chunk)
        self._position = 0

    def take(self, count: int) -> np.ndarray:
        """The next ``count`` uniforms of the stream.

        May return a read-only view into the internal buffer (callers
        consume the draws immediately and never write to them).
        """
        position = self._position
        if position + count <= self._buffer.size:
            self._position = position + count
            return self._buffer[position:position + count]
        out = np.empty(count)
        filled = 0
        while filled < count:
            available = self._buffer.size - self._position
            if not available:
                self._buffer = self._rng.random(
                    max(self._chunk, count - filled))
                self._position = 0
                available = self._buffer.size
            used = min(available, count - filled)
            out[filled:filled + used] = \
                self._buffer[self._position:self._position + used]
            self._position += used
            filled += used
        return out

    def take_one(self) -> float:
        """The next single uniform of the stream."""
        if self._position >= self._buffer.size:
            self._buffer = self._rng.random(self._chunk)
            self._position = 0
        value = float(self._buffer[self._position])
        self._position += 1
        return value


class ProfileGenerator:
    """Generates a :class:`ProfileSet` from a trace and a config.

    Parameters
    ----------
    config:
        Generator knobs.
    template:
        Optional template override; defaults to AuctionWatch with the
        config's restriction and grouping.
    fast:
        Selects the buffered-uniform sampling path and (for the default
        AuctionWatch template) the vectorized profile build. The fast
        path draws its uniforms from the same stream in the same order
        as the reference path — rank draws through the Zipf CDF,
        resource draws through an exact replay of numpy's
        without-replacement ``choice`` — so the generated profile sets
        are identical for any seed.
    """

    def __init__(self, config: GeneratorConfig,
                 template: ProfileTemplate | None = None,
                 fast: bool = True) -> None:
        self.config = config
        self._fast = fast
        if template is None:
            template = AuctionWatchTemplate(
                config.restriction(), grouping=config.grouping,  # type: ignore[arg-type]
                fast=fast)
        self._template = template

    def generate(self, trace: UpdateTrace, epoch: Epoch,
                 resource_ids: Sequence[int] | None = None) -> ProfileSet:
        """Build the profile set against ``trace`` over ``epoch``.

        Parameters
        ----------
        trace:
            Update trace the t-intervals are derived from.
        epoch:
            Simulation epoch.
        resource_ids:
            Popularity-ordered resource universe; position ``i`` is the
            ``(i+1)``-th most popular resource for the ``Zipf(alpha)``
            draw. Defaults to the trace's resources sorted by descending
            update count (busier resources are "more popular"), which is
            how popular feeds behave in the cited study.
        """
        if resource_ids is None:
            resource_ids = sorted(
                trace.resource_ids,
                key=lambda rid: (-trace.count_for(rid), rid),
            )
        resource_ids = list(resource_ids)
        if not resource_ids and self.config.num_profiles > 0:
            raise WorkloadError("cannot generate profiles with no resources")
        rng = np.random.default_rng(self.config.seed)
        rank_dist = BoundedZipf(self.config.beta, self.config.max_rank,
                                rng=rng)
        resource_dist = BoundedZipf(self.config.alpha, len(resource_ids),
                                    rng=rng)
        # Only the fast path pre-stamps profile ids; the reference path
        # keeps the original build-then-attach flow as the behavioral
        # (and benchmark) baseline.
        builds_attached = self._fast and _accepts_profile_id(self._template)
        uniforms = _UniformBuffer(rng) if self._fast else None
        profiles: list[Profile] = []
        for index in range(self.config.num_profiles):
            if uniforms is not None:
                # Same uniform stream as the reference draws below; the
                # rng itself is only touched through the buffer.
                rank = min(rank_dist.sample_from(uniforms.take_one()),
                           len(resource_ids))
                positions = resource_dist.sample_distinct_from(
                    rank, uniforms.take)
            else:
                rank = min(rank_dist.sample(), len(resource_ids))
                positions = resource_dist.sample_distinct(rank)
            chosen = [resource_ids[position - 1] for position in positions]
            name = f"AuctionWatch({rank})#{index}"
            if builds_attached:
                # Pre-stamping the profile id makes the ProfileSet
                # attachment below a no-op instead of a deep copy.
                profile = self._template.build_profile(
                    chosen, trace, epoch, name=name, profile_id=index)
            else:
                profile = self._template.build_profile(
                    chosen, trace, epoch, name=name)
            profiles.append(profile)
        return ProfileSet(profiles)


def _accepts_profile_id(template: object) -> bool:
    """True when the template's ``build_profile`` takes ``profile_id``.

    The bundled templates all do; duck-typed user templates predating
    the parameter keep working through the unattached call.
    """
    try:
        parameters = inspect.signature(template.build_profile).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    return "profile_id" in parameters
