"""Bounded Zipf sampling used by the profile generator.

The paper's generator (Section 5.1) uses two Zipf distributions:

* ``Zipf(beta, k)`` over ranks ``1..k`` — *intra-user* preference: higher
  ``beta`` means users prefer simpler (lower-rank) profiles; ``beta = 0``
  is uniform.
* ``Zipf(alpha, n)`` over resources ``1..n`` — *inter-user* preference:
  higher ``alpha`` concentrates profiles on popular resources (the paper
  cites ``alpha = 1.37`` for Web feeds); ``alpha = 0`` is uniform.

numpy's ``zipf`` is unbounded, so we implement the bounded distribution
explicitly: ``P(i) ∝ 1 / i^theta`` over ``i in {1..size}``.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

__all__ = ["BoundedZipf"]


class BoundedZipf:
    """Zipf distribution over ``{1, ..., size}`` with exponent ``theta``.

    Parameters
    ----------
    theta:
        Skew exponent; ``0`` gives the uniform distribution. Must be >= 0.
    size:
        Support size; must be >= 1.
    rng:
        Optional numpy Generator (a fresh default one is created if absent).
    """

    __slots__ = ("theta", "size", "_rng", "_pmf", "_cdf", "_cdf_list",
                 "_choice_cdf", "_choice_cdf_list")

    def __init__(self, theta: float, size: int,
                 rng: np.random.Generator | None = None) -> None:
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta}")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.theta = theta
        self.size = size
        self._rng = rng if rng is not None else np.random.default_rng()
        ranks = np.arange(1, size + 1, dtype=float)
        weights = ranks ** (-theta)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        # List mirror of the CDF: scalar inversions go through C
        # ``bisect`` (same right-insertion rule as ``searchsorted``,
        # same float comparisons) without numpy's per-call dispatch.
        self._cdf_list = self._cdf.tolist()
        self._choice_cdf: np.ndarray | None = None
        self._choice_cdf_list: list[float] | None = None

    def pmf(self, value: int) -> float:
        """Probability of drawing ``value`` (1-based)."""
        if not 1 <= value <= self.size:
            return 0.0
        return float(self._pmf[value - 1])

    def sample(self, size: int | None = None) -> int | np.ndarray:
        """Draw one value in ``{1..size}``, or ``size`` values at once.

        The batch form consumes the RNG stream exactly as ``size``
        scalar calls would (numpy fills uniform arrays from the same
        stream), so batched and one-at-a-time sampling are
        interchangeable without changing realizations.
        """
        if size is None:
            u = self._rng.random()
            return bisect_right(self._cdf_list, u) + 1
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        u = self._rng.random(size)
        return self._cdf.searchsorted(u, side="right") + 1

    def sample_from(self, u: float) -> int:
        """Map an externally drawn uniform to a value (1-based).

        Lets callers that manage their own uniform buffer (the fast
        profile-generator path) reuse the precomputed CDF while keeping
        the exact inverse-CDF transform of :meth:`sample`.
        """
        return bisect_right(self._cdf_list, u) + 1

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` i.i.d. values (1-based)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        u = self._rng.random(count)
        return np.searchsorted(self._cdf, u, side="right") + 1

    def sample_distinct(self, count: int) -> list[int]:
        """Draw ``count`` *distinct* values, Zipf-weighted without
        replacement.

        Used to pick a profile's resource set: a profile never lists the
        same resource twice for the same role.

        Raises
        ------
        ValueError
            If ``count`` exceeds the support size.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count > self.size:
            raise ValueError(
                f"cannot draw {count} distinct values from support of size "
                f"{self.size}"
            )
        chosen = self._rng.choice(self.size, size=count, replace=False,
                                  p=self._pmf)
        return [int(value) + 1 for value in chosen]

    def sample_distinct_from(self, count: int,
                             take_uniform) -> list[int]:
        """Weighted sampling without replacement from external uniforms.

        Replays ``Generator.choice(replace=False, p=...)`` exactly:
        numpy's implementation repeatedly draws ``count - n_uniq``
        uniforms, zeroes already-found entries, renormalizes the CDF and
        inverts it, keeping first occurrences. Feeding it uniforms from
        the same stream (``take_uniform(n)`` standing in for
        ``rng.random(n)``) therefore yields the same values in the same
        order as :meth:`sample_distinct` — which stays as the reference
        implementation.

        Raises
        ------
        ValueError
            If ``count`` exceeds the support size.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count > self.size:
            raise ValueError(
                f"cannot draw {count} distinct values from support of size "
                f"{self.size}"
            )
        if count == 0:
            return []
        # First round: nothing is zeroed yet, so the renormalized CDF
        # numpy builds internally is a constant of the distribution —
        # precompute it once (cumsum then in-place normalize, the exact
        # float operations of the reference) instead of per call.
        if self._choice_cdf is None:
            cdf = np.cumsum(self._pmf)
            cdf /= cdf[-1]
            self._choice_cdf = cdf
            self._choice_cdf_list = cdf.tolist()
        draws = take_uniform(count)
        choice_cdf = self._choice_cdf_list
        if count == 1:
            return [bisect_right(choice_cdf, draws[0]) + 1]
        hits = [bisect_right(choice_cdf, u) for u in draws.tolist()]
        found_list = list(dict.fromkeys(hits))
        if len(found_list) == count:
            return [value + 1 for value in found_list]
        # Collision: fall back to the generic rejection loop, zeroing
        # already-found entries exactly as numpy's choice does.
        weights = self._pmf.copy()
        found = np.zeros(count, dtype=np.int64)
        found[0:len(found_list)] = found_list
        n_uniq = len(found_list)
        while n_uniq < count:
            draws = take_uniform(count - n_uniq)
            weights[found[0:n_uniq]] = 0
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            new = cdf.searchsorted(draws, side="right")
            _, unique_indices = np.unique(new, return_index=True)
            unique_indices.sort()
            new = new.take(unique_indices)
            found[n_uniq:n_uniq + new.size] = new
            n_uniq += new.size
        return [int(value) + 1 for value in found]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundedZipf(theta={self.theta}, size={self.size})"
