"""Bounded Zipf sampling used by the profile generator.

The paper's generator (Section 5.1) uses two Zipf distributions:

* ``Zipf(beta, k)`` over ranks ``1..k`` — *intra-user* preference: higher
  ``beta`` means users prefer simpler (lower-rank) profiles; ``beta = 0``
  is uniform.
* ``Zipf(alpha, n)`` over resources ``1..n`` — *inter-user* preference:
  higher ``alpha`` concentrates profiles on popular resources (the paper
  cites ``alpha = 1.37`` for Web feeds); ``alpha = 0`` is uniform.

numpy's ``zipf`` is unbounded, so we implement the bounded distribution
explicitly: ``P(i) ∝ 1 / i^theta`` over ``i in {1..size}``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BoundedZipf"]


class BoundedZipf:
    """Zipf distribution over ``{1, ..., size}`` with exponent ``theta``.

    Parameters
    ----------
    theta:
        Skew exponent; ``0`` gives the uniform distribution. Must be >= 0.
    size:
        Support size; must be >= 1.
    rng:
        Optional numpy Generator (a fresh default one is created if absent).
    """

    __slots__ = ("theta", "size", "_rng", "_pmf", "_cdf")

    def __init__(self, theta: float, size: int,
                 rng: np.random.Generator | None = None) -> None:
        if theta < 0:
            raise ValueError(f"theta must be >= 0, got {theta}")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.theta = theta
        self.size = size
        self._rng = rng if rng is not None else np.random.default_rng()
        ranks = np.arange(1, size + 1, dtype=float)
        weights = ranks ** (-theta)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)

    def pmf(self, value: int) -> float:
        """Probability of drawing ``value`` (1-based)."""
        if not 1 <= value <= self.size:
            return 0.0
        return float(self._pmf[value - 1])

    def sample(self) -> int:
        """Draw one value in ``{1..size}``."""
        u = self._rng.random()
        return int(np.searchsorted(self._cdf, u, side="right")) + 1

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` i.i.d. values (1-based)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        u = self._rng.random(count)
        return np.searchsorted(self._cdf, u, side="right") + 1

    def sample_distinct(self, count: int) -> list[int]:
        """Draw ``count`` *distinct* values, Zipf-weighted without
        replacement.

        Used to pick a profile's resource set: a profile never lists the
        same resource twice for the same role.

        Raises
        ------
        ValueError
            If ``count`` exceeds the support size.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count > self.size:
            raise ValueError(
                f"cannot draw {count} distinct values from support of size "
                f"{self.size}"
            )
        chosen = self._rng.choice(self.size, size=count, replace=False,
                                  p=self._pmf)
        return [int(value) + 1 for value in chosen]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundedZipf(theta={self.theta}, size={self.size})"
