"""Workload construction: restrictions, Zipf sampling, templates, generator."""

from repro.workloads.generator import GeneratorConfig, ProfileGenerator
from repro.workloads.restrictions import (
    DeliveryRestriction,
    OverwriteRestriction,
    WindowRestriction,
    derive_execution_intervals,
)
from repro.workloads.templates import (
    AuctionWatchTemplate,
    PeriodicWatchTemplate,
    ProfileTemplate,
    SingleResourceTemplate,
)
from repro.workloads.zipf import BoundedZipf

__all__ = [
    "AuctionWatchTemplate",
    "BoundedZipf",
    "DeliveryRestriction",
    "GeneratorConfig",
    "OverwriteRestriction",
    "PeriodicWatchTemplate",
    "ProfileGenerator",
    "ProfileTemplate",
    "SingleResourceTemplate",
    "WindowRestriction",
    "derive_execution_intervals",
]
