"""Profile templates: turning traces + resource choices into profiles.

The paper's evaluation uses the **AuctionWatch(k)** template: monitor an
item sold in ``k`` parallel auctions and notify the user once a new bid was
posted in *all* of them. Each notification round is one t-interval whose
EIs are derived from the per-auction update streams via a delivery
restriction (overwrite or window(W)).

Two grouping strategies are provided for composing the per-resource EI
streams into t-intervals:

* ``"indexed"`` (default) — the i-th update round of every resource forms
  the i-th t-interval ("the i-th bid on each auction"); faithful to the
  AuctionWatch semantics and guaranteed rank = k for every t-interval.
* ``"overlap"`` — anchored on the resource with the fewest EIs, each
  t-interval combines EIs of the other resources that *temporally overlap*
  the anchor EI (the arbitrage semantics of Figure 1, where price
  observations must refer to overlapping validity periods).

A ``SingleResourceTemplate`` produces rank-1 profiles (every EI is its own
t-interval) — the simple-profile baseline (e.g. a Google-Reader-style feed
subscription).
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.core.errors import WorkloadError
from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.profile import Profile
from repro.core.timeline import Epoch
from repro.traces.events import UpdateTrace
from repro.workloads.restrictions import DeliveryRestriction

__all__ = [
    "AuctionWatchTemplate",
    "PeriodicWatchTemplate",
    "SingleResourceTemplate",
    "ProfileTemplate",
]

Grouping = Literal["indexed", "overlap"]


class AuctionWatchTemplate:
    """AuctionWatch(k): capture every bid round across k parallel auctions.

    Parameters
    ----------
    restriction:
        Delivery restriction converting update chronons into EIs.
    grouping:
        ``"indexed"`` or ``"overlap"`` (see module docstring).
    """

    def __init__(self, restriction: DeliveryRestriction,
                 grouping: Grouping = "indexed") -> None:
        if grouping not in ("indexed", "overlap"):
            raise WorkloadError(f"unknown grouping {grouping!r}")
        self._restriction = restriction
        self._grouping = grouping

    def build_profile(self, resource_ids: Sequence[int], trace: UpdateTrace,
                      epoch: Epoch, name: str = "") -> Profile:
        """Instantiate the template for a concrete resource tuple.

        Resources without any update contribute no rounds; a profile over
        resources that never all update together ends up empty (and does
        not count toward GC).
        """
        if not resource_ids:
            raise WorkloadError("AuctionWatch needs at least one resource")
        if len(set(resource_ids)) != len(resource_ids):
            raise WorkloadError(
                f"duplicate resources in AuctionWatch: {resource_ids}"
            )
        streams = [
            self._restriction.execution_intervals(
                resource_id, trace.update_chronons(resource_id), epoch)
            for resource_id in resource_ids
        ]
        if self._grouping == "indexed":
            tintervals = _group_indexed(streams)
        else:
            tintervals = _group_overlap(streams)
        label = name or f"AuctionWatch({len(resource_ids)})"
        return Profile(tintervals, name=label)


class SingleResourceTemplate:
    """Rank-1 profiles: every EI of every chosen resource is a t-interval.

    Models simple feed subscriptions (each update must be delivered on its
    own; no cross-resource coordination).
    """

    def __init__(self, restriction: DeliveryRestriction) -> None:
        self._restriction = restriction

    def build_profile(self, resource_ids: Sequence[int], trace: UpdateTrace,
                      epoch: Epoch, name: str = "") -> Profile:
        """One rank-1 t-interval per EI of each chosen resource."""
        if not resource_ids:
            raise WorkloadError("template needs at least one resource")
        tintervals: list[TInterval] = []
        for resource_id in resource_ids:
            eis = self._restriction.execution_intervals(
                resource_id, trace.update_chronons(resource_id), epoch)
            tintervals.extend(TInterval([ei]) for ei in eis)
        label = name or f"Subscribe({len(resource_ids)})"
        return Profile(tintervals, name=label)


class PeriodicWatchTemplate:
    """Temporal-trigger t-intervals: "check all resources every P chronons".

    Section 3 of the paper allows execution intervals to begin on a
    *temporal* event ("e.g., every ten minutes") rather than an update.
    This template fires a monitoring round every ``period`` chronons: the
    i-th t-interval holds one EI per resource over the shared window
    ``[1 + i*period, min(1 + i*period + width, K)]``.

    Update traces are ignored (the trigger is the clock); the ``trace``
    parameter exists for signature compatibility with the other
    templates.

    Parameters
    ----------
    period:
        Chronons between rounds (>= 1).
    width:
        Extra chronons each round's window stays open (0 = unit EIs).
    phase:
        Offset of the first round (0 = the round opens at chronon 1).
    """

    def __init__(self, period: int, width: int = 0, phase: int = 0) -> None:
        if period < 1:
            raise WorkloadError(f"period must be >= 1, got {period}")
        if width < 0:
            raise WorkloadError(f"width must be >= 0, got {width}")
        if phase < 0:
            raise WorkloadError(f"phase must be >= 0, got {phase}")
        self._period = period
        self._width = width
        self._phase = phase

    def build_profile(self, resource_ids: Sequence[int],
                      trace: UpdateTrace | None, epoch: Epoch,
                      name: str = "") -> Profile:
        """Temporal rounds: one t-interval per period tick."""
        if not resource_ids:
            raise WorkloadError("PeriodicWatch needs at least one resource")
        if len(set(resource_ids)) != len(resource_ids):
            raise WorkloadError(
                f"duplicate resources in PeriodicWatch: {resource_ids}"
            )
        tintervals: list[TInterval] = []
        start = 1 + self._phase
        while start <= epoch.last:
            finish = min(epoch.last, start + self._width)
            tintervals.append(TInterval([
                ExecutionInterval(resource_id, start, finish)
                for resource_id in resource_ids
            ]))
            start += self._period
        label = name or f"PeriodicWatch({len(resource_ids)})"
        return Profile(tintervals, name=label)


# A template is anything exposing build_profile; the classes above comply.
ProfileTemplate = (AuctionWatchTemplate | SingleResourceTemplate
                   | PeriodicWatchTemplate)


def _group_indexed(streams: list[list[ExecutionInterval]]
                   ) -> list[TInterval]:
    """i-th EI of each stream forms the i-th t-interval."""
    if any(not stream for stream in streams):
        return []
    rounds = min(len(stream) for stream in streams)
    return [TInterval([stream[i] for stream in streams])
            for i in range(rounds)]


def _group_overlap(streams: list[list[ExecutionInterval]]
                   ) -> list[TInterval]:
    """Anchor on the sparsest stream; match overlapping EIs elsewhere.

    For each anchor EI, every other stream contributes its earliest EI that
    temporally overlaps the anchor; anchor EIs without a full match are
    dropped (no valid simultaneous observation exists).
    """
    if any(not stream for stream in streams):
        return []
    anchor_index = min(range(len(streams)), key=lambda i: len(streams[i]))
    anchor_stream = streams[anchor_index]
    tintervals: list[TInterval] = []
    for anchor_ei in anchor_stream:
        members = [anchor_ei]
        complete = True
        for index, stream in enumerate(streams):
            if index == anchor_index:
                continue
            match = next(
                (ei for ei in stream if ei.overlaps(anchor_ei)), None)
            if match is None:
                complete = False
                break
            members.append(match)
        if complete:
            tintervals.append(TInterval(members))
    return tintervals
