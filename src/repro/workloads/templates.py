"""Profile templates: turning traces + resource choices into profiles.

The paper's evaluation uses the **AuctionWatch(k)** template: monitor an
item sold in ``k`` parallel auctions and notify the user once a new bid was
posted in *all* of them. Each notification round is one t-interval whose
EIs are derived from the per-auction update streams via a delivery
restriction (overwrite or window(W)).

Two grouping strategies are provided for composing the per-resource EI
streams into t-intervals:

* ``"indexed"`` (default) — the i-th update round of every resource forms
  the i-th t-interval ("the i-th bid on each auction"); faithful to the
  AuctionWatch semantics and guaranteed rank = k for every t-interval.
* ``"overlap"`` — anchored on the resource with the fewest EIs, each
  t-interval combines EIs of the other resources that *temporally overlap*
  the anchor EI (the arbitrage semantics of Figure 1, where price
  observations must refer to overlapping validity periods).

A ``SingleResourceTemplate`` produces rank-1 profiles (every EI is its own
t-interval) — the simple-profile baseline (e.g. a Google-Reader-style feed
subscription).
"""

from __future__ import annotations

import weakref
from bisect import bisect_left
from typing import Literal, Sequence

import numpy as np

from repro.core.errors import WorkloadError
from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.profile import Profile
from repro.core.timeline import Epoch
from repro.traces.events import UpdateTrace
from repro.workloads.restrictions import (
    DeliveryRestriction,
    OverwriteRestriction,
    WindowRestriction,
)

__all__ = [
    "AuctionWatchTemplate",
    "PeriodicWatchTemplate",
    "SingleResourceTemplate",
    "ProfileTemplate",
]

Grouping = Literal["indexed", "overlap"]



class AuctionWatchTemplate:
    """AuctionWatch(k): capture every bid round across k parallel auctions.

    Parameters
    ----------
    restriction:
        Delivery restriction converting update chronons into EIs.
    grouping:
        ``"indexed"`` or ``"overlap"`` (see module docstring).
    fast:
        Selects the vectorized build path: per-resource EI streams are
        derived once per trace through the restriction's
        ``interval_bounds`` (cached, so profiles sharing a resource share
        its stream) and overlap grouping matches anchors with
        ``np.searchsorted`` instead of a per-anchor linear scan. The
        profiles produced are equal to the reference path's; restrictions
        without ``interval_bounds`` (or yielding non-monotone streams)
        transparently fall back to the reference derivation.
    """

    def __init__(self, restriction: DeliveryRestriction,
                 grouping: Grouping = "indexed", fast: bool = True) -> None:
        if grouping not in ("indexed", "overlap"):
            raise WorkloadError(f"unknown grouping {grouping!r}")
        self._restriction = restriction
        self._grouping = grouping
        self._fast = fast
        self._stream_cache: tuple[
            weakref.ref,
            dict[int, _EIStream],
            dict[int, tuple[np.ndarray, np.ndarray]] | None,
            dict[tuple[int, ...], list[TInterval]],
        ] | None = None

    def build_profile(self, resource_ids: Sequence[int], trace: UpdateTrace,
                      epoch: Epoch, name: str = "",
                      profile_id: int = -1) -> Profile:
        """Instantiate the template for a concrete resource tuple.

        Resources without any update contribute no rounds; a profile over
        resources that never all update together ends up empty (and does
        not count toward GC). ``profile_id`` pre-stamps identities so the
        owning :class:`~repro.core.profile.ProfileSet` can attach the
        profile without copying it.
        """
        if not resource_ids:
            raise WorkloadError("AuctionWatch needs at least one resource")
        if len(set(resource_ids)) != len(resource_ids):
            raise WorkloadError(
                f"duplicate resources in AuctionWatch: {resource_ids}"
            )
        if self._fast:
            cache = self._ensure_cache(trace, epoch)
            label = name or f"AuctionWatch({len(resource_ids)})"
            key = tuple(resource_ids)
            built = cache[3].get(key)
            if built is not None:
                # Another profile already watches exactly these
                # resources: its t-intervals differ only in the stamped
                # profile id, and EIs carry no profile identity, so the
                # member tuples are shared as-is.
                return Profile.from_stamped(
                    tuple(TInterval.from_stamped(eta.eis,
                                                 eta.tinterval_id,
                                                 profile_id)
                          for eta in built),
                    profile_id, label)
            streams = [self._stream_for(resource_id, trace, epoch, cache)
                       for resource_id in resource_ids]
            if self._grouping == "indexed":
                tintervals = _group_indexed_fast(streams, profile_id)
            else:
                tintervals = _group_overlap_fast(streams, profile_id)
            cache[3][key] = tintervals
            return Profile.from_stamped(tuple(tintervals), profile_id,
                                        label)
        reference = [
            self._restriction.execution_intervals(
                resource_id, trace.update_chronons(resource_id), epoch)
            for resource_id in resource_ids
        ]
        if self._grouping == "indexed":
            tintervals = _group_indexed(reference, profile_id)
        else:
            tintervals = _group_overlap(reference, profile_id)
        label = name or f"AuctionWatch({len(resource_ids)})"
        return Profile(tintervals, profile_id=profile_id, name=label)

    def _ensure_cache(self, trace: UpdateTrace, epoch: Epoch) -> tuple:
        """The per-trace cache: streams, bulk bounds, profile memo.

        Keyed on the trace (weakly, so a template never pins a dead
        trace) and shared by every profile built from it. On the first
        miss for a trace the interval bounds of *all* its resources are
        derived in one vectorized pass (built-in restrictions only).
        """
        cache = self._stream_cache
        if cache is None or cache[0]() is not trace:
            cache = (weakref.ref(trace),
                     {},
                     _bulk_bounds(self._restriction, trace, epoch),
                     {})
            self._stream_cache = cache
        return cache

    def _stream_for(self, resource_id: int, trace: UpdateTrace,
                    epoch: Epoch, cache: tuple | None = None) -> "_EIStream":
        """One resource's cached EI stream with columnar bounds."""
        if cache is None:
            cache = self._ensure_cache(trace, epoch)
        per_resource = cache[1]
        stream = per_resource.get(resource_id)
        if stream is None:
            bulk = cache[2]
            if bulk is not None:
                starts, finishes = bulk.get(resource_id, _EMPTY_BOUNDS)
                stream = _EIStream(resource_id, starts, finishes,
                                   monotone=True)
            else:
                stream = _derive_stream(self._restriction, resource_id,
                                        trace, epoch)
            per_resource[resource_id] = stream
        return stream


class SingleResourceTemplate:
    """Rank-1 profiles: every EI of every chosen resource is a t-interval.

    Models simple feed subscriptions (each update must be delivered on its
    own; no cross-resource coordination).
    """

    def __init__(self, restriction: DeliveryRestriction) -> None:
        self._restriction = restriction

    def build_profile(self, resource_ids: Sequence[int], trace: UpdateTrace,
                      epoch: Epoch, name: str = "",
                      profile_id: int = -1) -> Profile:
        """One rank-1 t-interval per EI of each chosen resource."""
        if not resource_ids:
            raise WorkloadError("template needs at least one resource")
        tintervals: list[TInterval] = []
        for resource_id in resource_ids:
            eis = self._restriction.execution_intervals(
                resource_id, trace.update_chronons(resource_id), epoch)
            base = len(tintervals)
            tintervals.extend(
                TInterval([ei], tinterval_id=base + offset,
                          profile_id=profile_id)
                for offset, ei in enumerate(eis))
        label = name or f"Subscribe({len(resource_ids)})"
        return Profile(tintervals, profile_id=profile_id, name=label)


class PeriodicWatchTemplate:
    """Temporal-trigger t-intervals: "check all resources every P chronons".

    Section 3 of the paper allows execution intervals to begin on a
    *temporal* event ("e.g., every ten minutes") rather than an update.
    This template fires a monitoring round every ``period`` chronons: the
    i-th t-interval holds one EI per resource over the shared window
    ``[1 + i*period, min(1 + i*period + width, K)]``.

    Update traces are ignored (the trigger is the clock); the ``trace``
    parameter exists for signature compatibility with the other
    templates.

    Parameters
    ----------
    period:
        Chronons between rounds (>= 1).
    width:
        Extra chronons each round's window stays open (0 = unit EIs).
    phase:
        Offset of the first round (0 = the round opens at chronon 1).
    """

    def __init__(self, period: int, width: int = 0, phase: int = 0) -> None:
        if period < 1:
            raise WorkloadError(f"period must be >= 1, got {period}")
        if width < 0:
            raise WorkloadError(f"width must be >= 0, got {width}")
        if phase < 0:
            raise WorkloadError(f"phase must be >= 0, got {phase}")
        self._period = period
        self._width = width
        self._phase = phase

    def build_profile(self, resource_ids: Sequence[int],
                      trace: UpdateTrace | None, epoch: Epoch,
                      name: str = "", profile_id: int = -1) -> Profile:
        """Temporal rounds: one t-interval per period tick."""
        if not resource_ids:
            raise WorkloadError("PeriodicWatch needs at least one resource")
        if len(set(resource_ids)) != len(resource_ids):
            raise WorkloadError(
                f"duplicate resources in PeriodicWatch: {resource_ids}"
            )
        tintervals: list[TInterval] = []
        start = 1 + self._phase
        while start <= epoch.last:
            finish = min(epoch.last, start + self._width)
            tintervals.append(TInterval([
                ExecutionInterval(resource_id, start, finish)
                for resource_id in resource_ids
            ], tinterval_id=len(tintervals), profile_id=profile_id))
            start += self._period
        label = name or f"PeriodicWatch({len(resource_ids)})"
        return Profile(tintervals, profile_id=profile_id, name=label)


# A template is anything exposing build_profile; the classes above comply.
ProfileTemplate = (AuctionWatchTemplate | SingleResourceTemplate
                   | PeriodicWatchTemplate)


class _EIStream:
    """One resource's EI stream in columnar ``(starts, finishes)`` form.

    Streams derived from the bulk-bounds pass are *object-free*
    (``eis is None``): the grouping paths build each member EI exactly
    once, directly with its final slot id, skipping both the stream-EI
    allocation and the per-slot re-stamping copy. Fallback streams
    (custom restrictions) keep their EI objects — those may be
    subclasses whose type must survive into the built profiles — and
    the grouping paths re-stamp them as before; their EIs carry
    ``ei_id = 0`` so slot 0 reuses them without a copy.

    ``monotone`` records whether starts are strictly ascending and
    finishes nondecreasing — the precondition for the binary-search
    overlap match (both built-in restrictions satisfy it by
    construction and pass ``monotone=True``; custom ones are checked).
    """

    __slots__ = ("resource_id", "eis", "starts", "finishes", "monotone",
                 "starts_list", "finishes_list", "size", "ei_cache")

    def __init__(self, resource_id: int, starts: np.ndarray,
                 finishes: np.ndarray,
                 eis: list[ExecutionInterval] | None = None,
                 monotone: bool | None = None) -> None:
        self.resource_id = resource_id
        self.eis = eis
        self.starts = starts
        self.finishes = finishes
        self.starts_list = starts.tolist()
        self.finishes_list = finishes.tolist()
        self.size = len(self.starts_list)
        if monotone is None:
            monotone = bool(
                np.all(np.diff(starts) > 0)
                and np.all(np.diff(finishes) >= 0)
            )
        self.monotone = monotone
        # Object-free grouping memoizes the EIs it builds from this
        # stream, keyed ``slot * size + index`` — a resource recurring
        # across profiles (zipf skew makes that common) constructs each
        # (slot, event) member once per trace. EIs are frozen and
        # compared by value, so sharing them is invisible to callers.
        self.ei_cache: dict[int, ExecutionInterval] = {}


def _derive_stream(restriction: DeliveryRestriction, resource_id: int,
                   trace: UpdateTrace, epoch: Epoch) -> _EIStream:
    """Build one resource's EI stream for a non-built-in restriction.

    Restrictions exposing ``interval_bounds`` get the columnar path fed
    from the trace's cached unique-chronon arrays; others run their
    reference ``execution_intervals`` and only the bounds are
    extracted. Both keep EI objects on the stream (custom restrictions
    may return EI subclasses), so the grouping paths re-stamp rather
    than re-create them.
    """
    bounds = getattr(restriction, "interval_bounds", None)
    if bounds is not None:
        chronons = trace.unique_chronons(resource_id)
        starts, finishes = bounds(chronons, epoch)
        eis = [ExecutionInterval(resource_id, start, finish, 0)
               for start, finish in zip(starts.tolist(), finishes.tolist())]
        return _EIStream(resource_id, starts, finishes, eis=eis)
    eis = [ei.with_id(0) for ei in restriction.execution_intervals(
        resource_id, trace.update_chronons(resource_id), epoch)]
    count = len(eis)
    starts = np.fromiter((ei.start for ei in eis), dtype=np.int64,
                         count=count)
    finishes = np.fromiter((ei.finish for ei in eis), dtype=np.int64,
                           count=count)
    return _EIStream(resource_id, starts, finishes, eis=eis)


_EMPTY_BOUNDS = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


def _bulk_bounds(
    restriction: DeliveryRestriction, trace: UpdateTrace, epoch: Epoch,
) -> dict[int, tuple[np.ndarray, np.ndarray]] | None:
    """Interval bounds of *every* resource of a trace in one pass.

    One lexsort of the trace columns replaces the per-resource
    mask/dedup/``interval_bounds`` sequence: the (resource, chronon)
    pairs are deduplicated globally, the built-in restrictions' bound
    formulas are applied to the whole array, and the result is sliced
    at resource boundaries. Per resource this produces exactly what
    ``restriction.interval_bounds(trace.unique_chronons(rid), epoch)``
    would — the formulas only couple chronons of the same resource.

    Returns ``None`` for restrictions other than the two built-ins
    (their ``interval_bounds``, if any, runs per resource instead).
    """
    is_window = isinstance(restriction, WindowRestriction)
    if not is_window and not isinstance(restriction, OverwriteRestriction):
        return None
    resource_ids, chronons = trace.as_arrays()
    if not resource_ids.size:
        return {}
    order = np.lexsort((chronons, resource_ids))
    rids = resource_ids[order]
    starts = chronons[order]
    keep = np.empty(rids.size, dtype=bool)
    keep[0] = True
    np.logical_or(rids[1:] != rids[:-1], starts[1:] != starts[:-1],
                  out=keep[1:])
    rids = rids[keep]
    starts = starts[keep]
    heads = np.empty(rids.size, dtype=bool)
    heads[0] = True
    np.not_equal(rids[1:], rids[:-1], out=heads[1:])
    head_positions = heads.nonzero()[0]
    if is_window:
        finishes = np.minimum(starts + restriction.window, epoch.last)
    else:
        # Overwrite: each EI ends where the resource's next update
        # starts; the last EI of every resource runs to the epoch end.
        finishes = np.empty_like(starts)
        finishes[:-1] = starts[1:] - 1
        finishes[head_positions[1:] - 1] = epoch.last
        finishes[-1] = epoch.last
        np.maximum(starts, finishes, out=finishes)
    bounds: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    stops = np.append(head_positions[1:], rids.size).tolist()
    for rid, lo, hi in zip(rids[head_positions].tolist(),
                           head_positions.tolist(), stops):
        bounds[rid] = (starts[lo:hi], finishes[lo:hi])
    return bounds


def _group_indexed(streams: list[list[ExecutionInterval]],
                   profile_id: int = -1) -> list[TInterval]:
    """i-th EI of each stream forms the i-th t-interval."""
    if any(not stream for stream in streams):
        return []
    rounds = min(len(stream) for stream in streams)
    return [TInterval([stream[i] for stream in streams],
                      tinterval_id=i, profile_id=profile_id)
            for i in range(rounds)]


def _group_indexed_fast(streams: list[_EIStream],
                        profile_id: int = -1) -> list[TInterval]:
    """Indexed grouping over columnar streams, no re-validation.

    Object-free streams (the bulk-bounds path) have each member EI
    built here exactly once, directly with its final slot id — the
    bounds already satisfy the EI invariants, so ``__post_init__`` is
    skipped. Fallback streams re-stamp their existing EI objects (slot
    0 is pre-stamped and shared as-is). Output is identical to
    :func:`_group_indexed` over the same EIs.
    """
    if any(not stream.size for stream in streams):
        return []
    rounds = min(stream.size for stream in streams)
    if streams[0].eis is None:
        new = ExecutionInterval.__new__
        setfield = object.__setattr__
        tintervals = []
        for i in range(rounds):
            members = []
            for slot, stream in enumerate(streams):
                key = slot * stream.size + i
                ei = stream.ei_cache.get(key)
                if ei is None:
                    ei = new(ExecutionInterval)
                    setfield(ei, "resource_id", stream.resource_id)
                    setfield(ei, "start", stream.starts_list[i])
                    setfield(ei, "finish", stream.finishes_list[i])
                    setfield(ei, "ei_id", slot)
                    stream.ei_cache[key] = ei
                members.append(ei)
            tintervals.append(TInterval.from_stamped(
                tuple(members), tinterval_id=i, profile_id=profile_id))
        return tintervals
    return [
        TInterval.from_stamped(
            tuple(stream.eis[i].restamped(slot)
                  for slot, stream in enumerate(streams)),
            tinterval_id=i, profile_id=profile_id)
        for i in range(rounds)
    ]


def _group_overlap(streams: list[list[ExecutionInterval]],
                   profile_id: int = -1) -> list[TInterval]:
    """Anchor on the sparsest stream; match overlapping EIs elsewhere.

    For each anchor EI, every other stream contributes its earliest EI that
    temporally overlaps the anchor; anchor EIs without a full match are
    dropped (no valid simultaneous observation exists).
    """
    if any(not stream for stream in streams):
        return []
    anchor_index = min(range(len(streams)), key=lambda i: len(streams[i]))
    anchor_stream = streams[anchor_index]
    tintervals: list[TInterval] = []
    for anchor_ei in anchor_stream:
        members = [anchor_ei]
        complete = True
        for index, stream in enumerate(streams):
            if index == anchor_index:
                continue
            match = next(
                (ei for ei in stream if ei.overlaps(anchor_ei)), None)
            if match is None:
                complete = False
                break
            members.append(match)
        if complete:
            tintervals.append(TInterval(members, tinterval_id=len(tintervals),
                                        profile_id=profile_id))
    return tintervals


def _group_overlap_fast(streams: list[_EIStream],
                        profile_id: int = -1) -> list[TInterval]:
    """Binary-search overlap grouping over columnar EI streams.

    When a stream's starts ascend strictly and finishes never decrease
    (true for overwrite and window streams), the earliest EI overlapping
    anchor ``[s, f]`` is the one at ``bisect_left(finishes, s)`` —
    everything before it has already finished, and if that EI starts
    after ``f`` every later one does too. The bisection runs over the
    cached Python bound lists: at typical per-resource EI counts (tens)
    C ``bisect`` beats numpy's per-call dispatch overhead, and anchors
    already known to be unmatched are skipped entirely. Non-monotone
    custom streams keep the linear scan. Output is identical to
    :func:`_group_overlap`.
    """
    if any(not stream.size for stream in streams):
        return []
    anchor_index = 0
    for index in range(1, len(streams)):
        if streams[index].size < streams[anchor_index].size:
            anchor_index = index
    anchor = streams[anchor_index]
    object_free = anchor.eis is None
    new = ExecutionInterval.__new__
    setfield = object.__setattr__
    if len(streams) == 1:
        # Rank-1 profile: every anchor EI is its own t-interval.
        if object_free:
            tintervals = []
            ei_cache = anchor.ei_cache
            for position in range(anchor.size):
                ei = ei_cache.get(position)
                if ei is None:
                    ei = new(ExecutionInterval)
                    setfield(ei, "resource_id", anchor.resource_id)
                    setfield(ei, "start", anchor.starts_list[position])
                    setfield(ei, "finish", anchor.finishes_list[position])
                    setfield(ei, "ei_id", 0)
                    ei_cache[position] = ei
                tintervals.append(TInterval.from_stamped(
                    (ei,), tinterval_id=position, profile_id=profile_id))
            return tintervals
        return [TInterval.from_stamped((ei,), tinterval_id=position,
                                       profile_id=profile_id)
                for position, ei in enumerate(anchor.eis)]
    count = anchor.size
    anchor_starts = anchor.starts_list
    anchor_finishes = anchor.finishes_list
    valid = [True] * count
    matched: list[tuple[_EIStream, list[int]]] = []
    for index, stream in enumerate(streams):
        if index == anchor_index:
            continue
        matches = [0] * count
        if stream.monotone:
            finishes = stream.finishes_list
            starts = stream.starts_list
            size = stream.size
            for position in range(count):
                if not valid[position]:
                    continue
                at = bisect_left(finishes, anchor_starts[position])
                if at < size and starts[at] <= anchor_finishes[position]:
                    matches[position] = at
                else:
                    valid[position] = False
        else:
            # Non-monotone streams only occur on the fallback (EI
            # object) path — bulk streams are monotone by construction.
            for position, anchor_ei in enumerate(anchor.eis):
                if not valid[position]:
                    continue
                at = next((k for k, ei in enumerate(stream.eis)
                           if ei.overlaps(anchor_ei)), -1)
                if at >= 0:
                    matches[position] = at
                else:
                    valid[position] = False
        matched.append((stream, matches))
    tintervals: list[TInterval] = []
    append = tintervals.append
    if object_free:
        # Each member EI is built exactly once with its final slot id
        # (bounds already satisfy the EI invariants — no re-validation,
        # no re-stamping copies).
        anchor_rid = anchor.resource_id
        anchor_cache = anchor.ei_cache
        for position in range(count):
            if not valid[position]:
                continue
            first = anchor_cache.get(position)
            if first is None:
                first = new(ExecutionInterval)
                setfield(first, "resource_id", anchor_rid)
                setfield(first, "start", anchor_starts[position])
                setfield(first, "finish", anchor_finishes[position])
                setfield(first, "ei_id", 0)
                anchor_cache[position] = first
            members = [first]
            slot = 1
            for stream, matches in matched:
                at = matches[position]
                key = slot * stream.size + at
                ei = stream.ei_cache.get(key)
                if ei is None:
                    ei = new(ExecutionInterval)
                    setfield(ei, "resource_id", stream.resource_id)
                    setfield(ei, "start", stream.starts_list[at])
                    setfield(ei, "finish", stream.finishes_list[at])
                    setfield(ei, "ei_id", slot)
                    stream.ei_cache[key] = ei
                members.append(ei)
                slot += 1
            append(TInterval.from_stamped(
                tuple(members), tinterval_id=len(tintervals),
                profile_id=profile_id))
        return tintervals
    for position in range(count):
        if not valid[position]:
            continue
        # Anchor EIs are pre-stamped with slot 0's id; the other slots
        # take one restamped copy each.
        members = [anchor.eis[position]]
        slot = 1
        for stream, matches in matched:
            members.append(stream.eis[matches[position]].restamped(slot))
            slot += 1
        append(TInterval.from_stamped(
            tuple(members), tinterval_id=len(tintervals),
            profile_id=profile_id))
    return tintervals
