"""Delivery restrictions: turning update events into execution intervals.

Section 5.1 of the paper derives execution intervals from update events via
two restrictions:

* **overwrite** — every update must be delivered *before the next update*
  overwrites it: an update at ``t`` followed by the next update at ``t'``
  yields the EI ``[t, t' - 1]``; the last update's EI runs to the end of
  the epoch.
* **window(W)** — every update must be delivered within ``W`` chronons:
  an update at ``t`` yields ``[t, min(t + W, K)]``. ``window(0)`` forces an
  immediate probe (unit-width EIs — the ``P^[1]`` setting of Section 5.3).

Restrictions are small strategy objects so that templates can mix them.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.core.intervals import ExecutionInterval
from repro.core.timeline import Chronon, Epoch

__all__ = [
    "DeliveryRestriction",
    "OverwriteRestriction",
    "WindowRestriction",
    "derive_execution_intervals",
]


class DeliveryRestriction(Protocol):
    """Maps one resource's update chronons to execution intervals."""

    def execution_intervals(self, resource_id: int,
                            update_chronons: Sequence[Chronon],
                            epoch: Epoch) -> list[ExecutionInterval]:
        """EIs for a resource given its sorted update chronons."""
        ...


class OverwriteRestriction:
    """Deliver each update before the next one overwrites it.

    An update at chronon ``t_i`` with successor ``t_{i+1}`` produces
    ``[t_i, t_{i+1} - 1]``; consecutive-chronon updates produce unit EIs.
    The final update's EI extends to the end of the epoch (nothing ever
    overwrites it inside the horizon).
    """

    def execution_intervals(self, resource_id: int,
                            update_chronons: Sequence[Chronon],
                            epoch: Epoch) -> list[ExecutionInterval]:
        """EIs running from each update to just before the next one."""
        chronons = sorted(set(update_chronons))
        intervals: list[ExecutionInterval] = []
        for index, start in enumerate(chronons):
            if index + 1 < len(chronons):
                finish = chronons[index + 1] - 1
            else:
                finish = epoch.last
            intervals.append(ExecutionInterval(resource_id, start,
                                               max(start, finish)))
        return intervals

    def interval_bounds(self, update_chronons: np.ndarray,
                        epoch: Epoch) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(starts, finishes)`` from deduplicated chronons.

        ``update_chronons`` must be sorted and duplicate-free (the
        cached :meth:`UpdateTrace.unique_chronons` form); the result
        matches :meth:`execution_intervals` element-for-element.
        """
        starts = np.asarray(update_chronons, dtype=np.int64)
        if not starts.size:
            return starts, starts
        finishes = np.empty_like(starts)
        finishes[:-1] = starts[1:] - 1
        finishes[-1] = epoch.last
        return starts, np.maximum(starts, finishes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "OverwriteRestriction()"


class WindowRestriction:
    """Deliver each update within ``window`` chronons of its posting.

    ``window = 0`` demands an immediate probe, producing unit-width EIs;
    this is exactly how the paper constructs ``P^[1]`` instances in §5.3.
    """

    def __init__(self, window: int) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self.window = window

    def execution_intervals(self, resource_id: int,
                            update_chronons: Sequence[Chronon],
                            epoch: Epoch) -> list[ExecutionInterval]:
        """EIs of width ``window + 1`` starting at each update."""
        chronons = sorted(set(update_chronons))
        return [
            ExecutionInterval(resource_id, start,
                              min(start + self.window, epoch.last))
            for start in chronons
        ]

    def interval_bounds(self, update_chronons: np.ndarray,
                        epoch: Epoch) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(starts, finishes)`` from deduplicated chronons.

        ``update_chronons`` must be sorted and duplicate-free; the
        result matches :meth:`execution_intervals` element-for-element.
        """
        starts = np.asarray(update_chronons, dtype=np.int64)
        return starts, np.minimum(starts + self.window, epoch.last)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WindowRestriction(W={self.window})"


def derive_execution_intervals(resource_id: int,
                               update_chronons: Sequence[Chronon],
                               epoch: Epoch,
                               restriction: DeliveryRestriction
                               ) -> list[ExecutionInterval]:
    """Convenience wrapper applying a restriction to one resource's updates."""
    return restriction.execution_intervals(resource_id, update_chronons,
                                           epoch)
