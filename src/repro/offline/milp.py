"""Exact offline solver via mixed-integer linear programming.

Problem 1 has a natural MILP formulation that scipy's HiGHS backend solves
for moderate instances (hundreds of t-intervals):

* binary ``s_{r,j}`` for every *useful* resource-chronon pair (a pair is
  useful when some EI of some t-interval covers it);
* continuous ``y_e in [0, 1]`` per EI with ``y_e <= sum_{j in e} s_{r(e),j}``;
* continuous ``z_eta in [0, 1]`` per t-interval with ``z_eta <= y_e`` for
  every member EI;
* budget rows ``sum_r s_{r,j} <= C_j``;
* objective ``max sum z_eta``.

Only the ``s`` variables need integrality: once they are integral, the
optimal ``y``/``z`` are automatically 0/1 (they are monotone min-style
variables), so the objective equals the number of captured t-intervals.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.budget import BudgetVector
from repro.core.completeness import evaluate_schedule
from repro.core.errors import SolverCapacityError, SolverError
from repro.core.profile import ProfileSet
from repro.core.schedule import Schedule
from repro.core.timeline import Epoch
from repro.simulation.result import SimulationResult

__all__ = ["MILPSolver"]


class MILPSolver:
    """Optimal schedules through scipy's HiGHS MILP backend.

    Parameters
    ----------
    max_variables:
        Safety cap on the total variable count (default 200k).
    time_limit:
        Optional solver time limit in seconds; when hit, HiGHS returns the
        incumbent, which we still turn into a (possibly sub-optimal)
        schedule with ``extras["proven_optimal"] = 0.0``.
    """

    def __init__(self, max_variables: int = 200_000,
                 time_limit: float | None = None) -> None:
        if max_variables < 1:
            raise ValueError(
                f"max_variables must be >= 1, got {max_variables}"
            )
        self._max_variables = max_variables
        self._time_limit = time_limit
        self._relaxed = False  # set transiently by upper_bound()

    def upper_bound(self, profiles: ProfileSet, epoch: Epoch,
                    budget: BudgetVector) -> float:
        """LP-relaxation upper bound on the optimal *captured count*.

        Dropping the integrality of the probe variables yields a bound
        computable on instances far beyond the exact solver's reach; any
        schedule's captured count is ≤ this value. Returns ``0.0`` for
        empty profile sets.
        """
        if profiles.total_tintervals == 0:
            return 0.0
        self._relaxed = True
        try:
            result = self.solve(profiles, epoch, budget)
        finally:
            self._relaxed = False
        return float(result.extras["milp_objective"])

    def solve(self, profiles: ProfileSet, epoch: Epoch,
              budget: BudgetVector) -> SimulationResult:
        """Compute an optimal (or incumbent) schedule.

        Raises
        ------
        SolverCapacityError
            When the formulation exceeds ``max_variables``.
        SolverError
            When HiGHS reports an infeasible/failed solve.
        """
        started = time.perf_counter()

        # ---- enumerate variables -------------------------------------
        probe_index: dict[tuple[int, int], int] = {}  # (resource, chronon)
        ei_vars: list[tuple[int, int, int]] = []      # (resource, start, fin)
        ei_index: dict[tuple[int, int, int], int] = {}
        tinterval_eis: list[list[int]] = []

        for eta in profiles.tintervals():
            members: list[int] = []
            for ei in eta:
                key = (ei.resource_id, max(1, ei.start),
                       min(epoch.last, ei.finish))
                if key[1] > key[2]:
                    # EI entirely outside the epoch: uncapturable.
                    members.append(-1)
                    continue
                if key not in ei_index:
                    ei_index[key] = len(ei_vars)
                    ei_vars.append(key)
                    for chronon in range(key[1], key[2] + 1):
                        probe_index.setdefault(
                            (key[0], chronon), len(probe_index))
                members.append(ei_index[key])
            tinterval_eis.append(members)

        num_probes = len(probe_index)
        num_eis = len(ei_vars)
        num_tintervals = len(tinterval_eis)
        total = num_probes + num_eis + num_tintervals
        if total > self._max_variables:
            raise SolverCapacityError(
                f"MILP would need {total} variables "
                f"(cap {self._max_variables})"
            )
        if num_tintervals == 0:
            return SimulationResult(
                label="offline-milp", schedule=Schedule(),
                report=evaluate_schedule(profiles, Schedule()),
                probes_used=0,
                runtime_seconds=time.perf_counter() - started,
            )

        def probe_var(resource: int, chronon: int) -> int:
            return probe_index[(resource, chronon)]

        def ei_var(index: int) -> int:
            return num_probes + index

        def tinterval_var(index: int) -> int:
            return num_probes + num_eis + index

        # ---- constraints ---------------------------------------------
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        upper: list[float] = []
        row = 0

        # y_e - sum_j s_{r,j} <= 0
        for index, (resource, start, finish) in enumerate(ei_vars):
            rows.append(row)
            cols.append(ei_var(index))
            vals.append(1.0)
            for chronon in range(start, finish + 1):
                rows.append(row)
                cols.append(probe_var(resource, chronon))
                vals.append(-1.0)
            upper.append(0.0)
            row += 1

        # z_eta - y_e <= 0 for each member EI; z of an uncapturable
        # t-interval is pinned to 0.
        pinned_zero: list[int] = []
        for t_index, members in enumerate(tinterval_eis):
            if any(member < 0 for member in members):
                pinned_zero.append(t_index)
                continue
            for member in members:
                rows.append(row)
                cols.append(tinterval_var(t_index))
                vals.append(1.0)
                rows.append(row)
                cols.append(ei_var(member))
                vals.append(-1.0)
                upper.append(0.0)
                row += 1

        # budget rows: sum_r s_{r,j} <= C_j
        by_chronon: dict[int, list[int]] = {}
        for (resource, chronon), var in probe_index.items():
            by_chronon.setdefault(chronon, []).append(var)
        for chronon, variables in sorted(by_chronon.items()):
            for var in variables:
                rows.append(row)
                cols.append(var)
                vals.append(1.0)
            upper.append(float(budget.at(chronon)))
            row += 1

        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(row, total))
        constraints = LinearConstraint(
            matrix, lb=-np.inf, ub=np.array(upper))

        # ---- objective / bounds / integrality ------------------------
        objective = np.zeros(total)
        for t_index in range(num_tintervals):
            objective[tinterval_var(t_index)] = -1.0  # milp minimizes

        lower_bounds = np.zeros(total)
        upper_bounds = np.ones(total)
        for t_index in pinned_zero:
            upper_bounds[tinterval_var(t_index)] = 0.0
        bounds = Bounds(lower_bounds, upper_bounds)

        integrality = np.zeros(total)
        if not self._relaxed:
            integrality[:num_probes] = 1  # only probes must be integral

        options: dict[str, float] = {}
        if self._time_limit is not None:
            options["time_limit"] = self._time_limit

        result = milp(c=objective, constraints=constraints, bounds=bounds,
                      integrality=integrality, options=options or None)
        if result.x is None:
            raise SolverError(
                f"MILP solve failed: status={result.status} "
                f"({result.message})"
            )

        schedule = Schedule()
        for (resource, chronon), var in probe_index.items():
            if result.x[var] > 0.5:
                schedule.add_probe(resource, chronon)

        runtime = time.perf_counter() - started
        report = evaluate_schedule(profiles, schedule)
        return SimulationResult(
            label="offline-milp",
            schedule=schedule,
            report=report,
            probes_used=len(schedule),
            runtime_seconds=runtime,
            extras={
                "proven_optimal": 1.0 if result.status == 0 else 0.0,
                "milp_objective": float(-result.fun),
                "variables": float(total),
            },
        )
