"""Exact offline solver by schedule enumeration (Lemma 1).

The paper shows Problem 1 is solvable by full enumeration of feasible
schedules in ``O(n^(K * C_max))`` time — polynomial in ``n`` but
prohibitive for realistic ``K``. This module implements that enumeration
as a memoized depth-first search over chronons, usable (and used in tests)
as ground truth on tiny instances.

Key observations that keep the search sound and as small as possible:

* capture state is monotone — probing more resources never hurts — so at
  every chronon it suffices to branch over subsets of *useful* resources
  (those with an active uncaptured EI) of size exactly
  ``min(C_j, #useful)``;
* the value function depends only on ``(chronon, captured-EI set)``, so
  results are memoized on that pair; the captured set is an integer
  bitmask (Python's arbitrary-precision ints carry instances well past
  the 63-EI machine-word limit), with the per-chronon mask of each
  resource's active EIs precomputed once so expanding a probe subset is
  a handful of OR operations;
* the capture gain of a transition is found incrementally: only
  t-intervals owning a *newly set* EI bit can have just become complete,
  so the gain check touches those instead of rescanning every t-interval;
* chronons with no useful resource are skipped outright.

A node-count guard raises :class:`SolverCapacityError` instead of silently
burning hours, honoring the Lemma-1 warning; guard messages carry the
instance dimensions (``n``, ``K``, ``C_max``, #EIs) so oversized runs are
diagnosable from the error alone.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Iterator

from repro.core.budget import BudgetVector
from repro.core.completeness import evaluate_schedule
from repro.core.errors import SolverCapacityError
from repro.core.profile import ProfileSet
from repro.core.schedule import Schedule
from repro.core.timeline import Epoch
from repro.simulation.result import SimulationResult

__all__ = ["EnumerationSolver"]

#: Hard cap on total EI count. Bitmask states are arbitrary-precision
#: integers, so this is a memo-size safeguard, not a word-size limit.
MAX_EIS = 128


class EnumerationSolver:
    """Optimal schedules for tiny instances via memoized enumeration.

    Parameters
    ----------
    node_limit:
        Maximum number of DFS nodes to expand before raising
        :class:`SolverCapacityError` (default 2 million).
    """

    def __init__(self, node_limit: int = 2_000_000) -> None:
        if node_limit < 1:
            raise ValueError(f"node_limit must be >= 1, got {node_limit}")
        self._node_limit = node_limit

    def solve(self, profiles: ProfileSet, epoch: Epoch,
              budget: BudgetVector) -> SimulationResult:
        """Compute an optimal schedule, maximizing captured t-intervals.

        Raises
        ------
        SolverCapacityError
            When the instance exceeds :data:`MAX_EIS` execution intervals
            or the search exceeds the configured node limit.
        """
        started = time.perf_counter()

        # Flatten EIs with global indexes; group t-interval membership.
        eis: list[tuple[int, int, int]] = []  # (resource, start, finish)
        tinterval_members: list[list[int]] = []
        for eta in profiles.tintervals():
            members = []
            for ei in eta:
                members.append(len(eis))
                eis.append((ei.resource_id, ei.start, ei.finish))
            tinterval_members.append(members)

        dims = (f"n={profiles.total_tintervals} t-intervals, "
                f"K={len(epoch)} chronons, "
                f"C_max={budget.max_over(epoch)}, {len(eis)} EIs")
        if len(eis) > MAX_EIS:
            raise SolverCapacityError(
                f"enumeration supports at most {MAX_EIS} EIs ({dims})"
            )

        # Per chronon, per resource: bitmask of that resource's active EIs.
        res_masks_at: dict[int, dict[int, int]] = {}
        for index, (resource, start, finish) in enumerate(eis):
            for chronon in range(max(1, start),
                                 min(epoch.last, finish) + 1):
                per_res = res_masks_at.setdefault(chronon, {})
                per_res[resource] = per_res.get(resource, 0) | (1 << index)
        interesting = sorted(res_masks_at)

        full_masks = [self._mask(members) for members in tinterval_members]
        # EI index -> t-intervals containing it (for incremental gains).
        ei_owners: list[list[int]] = [[] for _ in eis]
        for t_index, members in enumerate(tinterval_members):
            for member in members:
                ei_owners[member].append(t_index)

        def gained_by(mask: int, new_mask: int) -> int:
            """T-intervals completed by ``new_mask`` but not ``mask``.

            Only owners of a newly-set EI bit can have just completed,
            so walk the fresh bits instead of every t-interval.
            """
            fresh = new_mask & ~mask
            gained = 0
            seen: set[int] = set()
            while fresh:
                bit = fresh & -fresh
                fresh ^= bit
                for owner in ei_owners[bit.bit_length() - 1]:
                    if owner not in seen:
                        seen.add(owner)
                        full = full_masks[owner]
                        if new_mask & full == full:
                            gained += 1
            return gained

        def expansions(chronon: int,
                       mask: int) -> Iterator[tuple[tuple[int, ...], int]]:
            """Yield ``(probed resources, new mask)`` per branch choice.

            Branches over subsets of useful resources (deterministic
            sorted order) of size exactly ``min(C_j, #useful)``; an empty
            yield means the chronon offers nothing to probe.
            """
            per_res = res_masks_at[chronon]
            useful = [resource for resource in sorted(per_res)
                      if per_res[resource] & ~mask]
            capacity = min(budget.at(chronon), len(useful))
            if capacity == 0:
                return
            for subset in combinations(useful, capacity):
                new_mask = mask
                for resource in subset:
                    new_mask |= per_res[resource]
                yield subset, new_mask

        memo: dict[tuple[int, int], int] = {}
        nodes = 0

        def search(position: int, mask: int) -> int:
            nonlocal nodes
            if position >= len(interesting):
                return 0
            key = (position, mask)
            hit = memo.get(key)
            if hit is not None:
                return hit
            nodes += 1
            if nodes > self._node_limit:
                raise SolverCapacityError(
                    f"enumeration exceeded {self._node_limit} nodes ({dims})"
                )
            chronon = interesting[position]
            best = 0
            branched = False
            for _subset, new_mask in expansions(chronon, mask):
                branched = True
                gained = gained_by(mask, new_mask)
                best = max(best, gained + search(position + 1, new_mask))
            if not branched:
                best = search(position + 1, mask)
            memo[key] = best
            return best

        best_value = search(0, 0)
        schedule = self._reconstruct(interesting, expansions, gained_by,
                                     memo)
        runtime = time.perf_counter() - started
        report = evaluate_schedule(profiles, schedule)
        return SimulationResult(
            label="offline-enumeration",
            schedule=schedule,
            report=report,
            probes_used=len(schedule),
            runtime_seconds=runtime,
            extras={"dfs_nodes": float(nodes),
                    "optimal_value": float(best_value)},
        )

    @staticmethod
    def _mask(members: list[int]) -> int:
        mask = 0
        for index in members:
            mask |= 1 << index
        return mask

    @staticmethod
    def _reconstruct(interesting: list[int], expansions, gained_by,
                     memo: dict[tuple[int, int], int]) -> Schedule:
        """Walk the memo table again, re-deriving one optimal schedule."""
        schedule = Schedule()
        mask = 0
        for position, chronon in enumerate(interesting):
            target = memo.get((position, mask))
            if target is None:
                # Unvisited state (can happen only past the optimum path).
                break
            chosen: tuple[int, ...] | None = None
            chosen_mask = mask
            for subset, new_mask in expansions(chronon, mask):
                gained = gained_by(mask, new_mask)
                tail = memo.get((position + 1, new_mask), 0)
                if gained + tail == target:
                    chosen = subset
                    chosen_mask = new_mask
                    break
            if chosen is None:
                continue
            for resource_id in chosen:
                schedule.add_probe(resource_id, chronon)
            mask = chosen_mask
        return schedule
