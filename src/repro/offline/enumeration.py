"""Exact offline solver by schedule enumeration (Lemma 1).

The paper shows Problem 1 is solvable by full enumeration of feasible
schedules in ``O(n^(K * C_max))`` time — polynomial in ``n`` but
prohibitive for realistic ``K``. This module implements that enumeration
as a memoized depth-first search over chronons, usable (and used in tests)
as ground truth on tiny instances.

Key observations that keep the search sound and as small as possible:

* capture state is monotone — probing more resources never hurts — so at
  every chronon it suffices to branch over subsets of *useful* resources
  (those with an active uncaptured EI) of size exactly
  ``min(C_j, #useful)``;
* the value function depends only on ``(chronon, captured-EI set)``, so
  results are memoized on that pair;
* chronons with no useful resource are skipped outright.

A node-count guard raises :class:`SolverCapacityError` instead of silently
burning hours, honoring the Lemma-1 warning.
"""

from __future__ import annotations

import time
from itertools import combinations

from repro.core.budget import BudgetVector
from repro.core.completeness import evaluate_schedule
from repro.core.errors import SolverCapacityError
from repro.core.profile import ProfileSet
from repro.core.schedule import Schedule
from repro.core.timeline import Epoch
from repro.simulation.result import SimulationResult

__all__ = ["EnumerationSolver"]


class EnumerationSolver:
    """Optimal schedules for tiny instances via memoized enumeration.

    Parameters
    ----------
    node_limit:
        Maximum number of DFS nodes to expand before raising
        :class:`SolverCapacityError` (default 2 million).
    """

    def __init__(self, node_limit: int = 2_000_000) -> None:
        if node_limit < 1:
            raise ValueError(f"node_limit must be >= 1, got {node_limit}")
        self._node_limit = node_limit

    def solve(self, profiles: ProfileSet, epoch: Epoch,
              budget: BudgetVector) -> SimulationResult:
        """Compute an optimal schedule, maximizing captured t-intervals.

        Raises
        ------
        SolverCapacityError
            When the search exceeds the configured node limit.
        """
        started = time.perf_counter()

        # Flatten EIs with global indexes; group t-interval membership.
        eis: list[tuple[int, int, int]] = []  # (resource, start, finish)
        tinterval_members: list[list[int]] = []
        for eta in profiles.tintervals():
            members = []
            for ei in eta:
                members.append(len(eis))
                eis.append((ei.resource_id, ei.start, ei.finish))
            tinterval_members.append(members)

        if len(eis) > 63:
            raise SolverCapacityError(
                f"enumeration supports at most 63 EIs, got {len(eis)}"
            )

        # Index: chronon -> list of EI indexes active there.
        active_at: dict[int, list[int]] = {}
        for index, (_resource, start, finish) in enumerate(eis):
            for chronon in range(max(1, start),
                                 min(epoch.last, finish) + 1):
                active_at.setdefault(chronon, []).append(index)
        interesting = sorted(active_at)

        full_masks = [self._mask(members) for members in tinterval_members]

        memo: dict[tuple[int, int], int] = {}
        nodes = 0

        def captured_value(mask: int) -> int:
            return sum(1 for full in full_masks if mask & full == full)

        def search(position: int, mask: int) -> int:
            nonlocal nodes
            if position >= len(interesting):
                return 0
            key = (position, mask)
            hit = memo.get(key)
            if hit is not None:
                return hit
            nodes += 1
            if nodes > self._node_limit:
                raise SolverCapacityError(
                    f"enumeration exceeded {self._node_limit} nodes"
                )
            chronon = interesting[position]
            pending = [index for index in active_at[chronon]
                       if not mask & (1 << index)]
            useful = sorted({eis[index][0] for index in pending})
            capacity = min(budget.at(chronon), len(useful))
            best = 0
            if capacity == 0 or not useful:
                best = search(position + 1, mask)
            else:
                for subset in combinations(useful, capacity):
                    probed = set(subset)
                    new_mask = mask
                    for index in pending:
                        if eis[index][0] in probed:
                            new_mask |= 1 << index
                    gained = (captured_value(new_mask)
                              - captured_value(mask))
                    best = max(best,
                               gained + search(position + 1, new_mask))
            memo[key] = best
            return best

        best_value = search(0, 0)
        schedule = self._reconstruct(best_value, interesting, active_at,
                                     eis, full_masks, budget, memo)
        runtime = time.perf_counter() - started
        report = evaluate_schedule(profiles, schedule)
        return SimulationResult(
            label="offline-enumeration",
            schedule=schedule,
            report=report,
            probes_used=len(schedule),
            runtime_seconds=runtime,
            extras={"dfs_nodes": float(nodes),
                    "optimal_value": float(best_value)},
        )

    @staticmethod
    def _mask(members: list[int]) -> int:
        mask = 0
        for index in members:
            mask |= 1 << index
        return mask

    def _reconstruct(self, best_value: int, interesting: list[int],
                     active_at: dict[int, list[int]],
                     eis: list[tuple[int, int, int]],
                     full_masks: list[int], budget: BudgetVector,
                     memo: dict[tuple[int, int], int]) -> Schedule:
        """Walk the memo table again, re-deriving one optimal schedule."""

        def captured_value(mask: int) -> int:
            return sum(1 for full in full_masks if mask & full == full)

        schedule = Schedule()
        mask = 0
        for position, chronon in enumerate(interesting):
            target = memo.get((position, mask))
            if target is None:
                # Unvisited state (can happen only past the optimum path).
                break
            pending = [index for index in active_at[chronon]
                       if not mask & (1 << index)]
            useful = sorted({eis[index][0] for index in pending})
            capacity = min(budget.at(chronon), len(useful))
            if capacity == 0 or not useful:
                continue
            chosen: tuple[int, ...] | None = None
            chosen_mask = mask
            for subset in combinations(useful, capacity):
                probed = set(subset)
                new_mask = mask
                for index in pending:
                    if eis[index][0] in probed:
                        new_mask |= 1 << index
                gained = captured_value(new_mask) - captured_value(mask)
                tail = memo.get((position + 1, new_mask), 0)
                if gained + tail == target:
                    chosen = subset
                    chosen_mask = new_mask
                    break
            if chosen is None:
                continue
            for resource_id in chosen:
                schedule.add_probe(resource_id, chronon)
            mask = chosen_mask
        return schedule
