"""Incremental Local-Ratio under live profile churn (``P^[1]``).

:class:`IncrementalLocalRatio` keeps the offline pipeline's derived
structures alive across profile inserts and deletes instead of
rebuilding them per solve:

* **Conflict adjacency** — the sweep-line demand-class structure of
  :func:`repro.offline.conflict.unit_conflict_adjacency` is maintained
  under :meth:`add_profile`/:meth:`remove_profile`: an inserted
  t-interval joins its demand class at each chronon it loads and gains
  edges only to classes whose resource union overflows that chronon's
  budget — O(classes touched) per t-interval, not O(m^2); a delete
  unlinks the key from its neighbors and classes. The resulting edge
  set is *identical* to a from-scratch build over the surviving
  profiles (property-tested).
* **Demand maps** — shared with every other consumer through the
  bounded ``lru_cache`` in :mod:`repro.offline.conflict`; repeated
  resolves after churn re-hit the cache instead of recomputing.
  :meth:`close` releases them via
  :func:`~repro.offline.conflict.clear_demand_cache`.
* **The Hall-precheck assigner** — a live
  :class:`~repro.offline.matching.ProbeAssigner` carries the accepted
  selection between resolves. :meth:`resolve` re-runs the lazy-heap
  decomposition over the maintained adjacency, then *diffs* the new
  acceptance against the surviving one: departed t-intervals are
  ``remove``\\ d (the Fenwick start/finish trees update in place) and
  newcomers ``try_add``\\ ed — survivors, typically the vast majority
  under modest churn, are never re-matched.

The exactness contract: after any interleaving of adds and removes,
:meth:`resolve` returns precisely what
``LocalRatioApproximation(engine="fast").solve()`` returns on a
from-scratch :class:`~repro.core.profile.ProfileSet` of the surviving
profiles (taken in ascending live-id order). The decomposition itself
is deliberately *not* warm-started from the previous stack — local
ratio's selection order is globally coupled, so reusing old rounds
would silently diverge from the from-scratch referee; re-running it
over incrementally-maintained inputs keeps the identity while the
expensive parts (adjacency, demand maps, matching) stay incremental.
"""

from __future__ import annotations

import time

from repro.core.budget import BudgetVector
from repro.core.completeness import CompletenessReport, evaluate_schedule
from repro.core.errors import ModelError
from repro.core.intervals import TInterval
from repro.core.profile import Profile, ProfileSet
from repro.core.timeline import Epoch
from repro.offline.conflict import (
    Adjacency,
    TKey,
    clear_demand_cache,
    demand_map,
)
from repro.offline.local_ratio import _decompose_fast, fractional_guidance
from repro.offline.matching import ProbeAssigner
from repro.simulation.result import SimulationResult

__all__ = ["IncrementalLocalRatio"]


class IncrementalLocalRatio:
    """Live-churn Local-Ratio solver for unit-width profile sets.

    Parameters mirror :class:`~repro.offline.local_ratio.
    LocalRatioApproximation`; ``engine`` is implicitly ``"fast"`` (the
    reference engine has no incremental form).
    """

    def __init__(self, epoch: Epoch, budget: BudgetVector,
                 use_lp: bool = True,
                 max_lp_variables: int = 50_000) -> None:
        self.epoch = epoch
        self.budget = budget
        self._use_lp = use_lp
        self._max_lp_variables = max_lp_variables

        self._profiles: dict[int, Profile] = {}
        self._next_profile_id = 0
        self._etas: dict[TKey, TInterval] = {}
        self._demands: dict[TKey, dict[int, frozenset[int]]] = {}
        self._adjacency: Adjacency = {}
        # chronon -> demand class (resource frozenset) -> member keys.
        self._by_chronon: dict[int, dict[frozenset[int], set[TKey]]] = {}
        self._assigner = ProbeAssigner(epoch, budget, fast=True)
        self._accepted: dict[TKey, TInterval] = {}

    def __len__(self) -> int:
        return len(self._profiles)

    @property
    def live_profile_ids(self) -> list[int]:
        """Ids of currently-registered profiles, ascending."""
        return sorted(self._profiles)

    @property
    def adjacency(self) -> Adjacency:
        """The live conflict adjacency, keyed by true (live) ids.

        Identical — modulo :class:`~repro.core.profile.ProfileSet`'s
        dense relabel — to a from-scratch
        :func:`~repro.offline.conflict.unit_conflict_adjacency` over the
        live set; the property suite asserts exactly that.
        """
        return self._adjacency

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------

    def add_profile(self, profile: Profile) -> int:
        """Register a unit-width profile; returns its assigned id.

        O(EIs + touched demand classes) — each of the profile's
        t-intervals is linked into the per-chronon class structure and
        gains edges to conflicting classes only.
        """
        if not profile.is_unit_width:
            raise ModelError(
                "IncrementalLocalRatio requires unit-width (P^[1]) "
                "profiles")
        profile_id = self._next_profile_id
        self._next_profile_id += 1
        attached = profile.attached(profile_id)
        self._profiles[profile_id] = attached
        budget = self.budget
        for eta in attached:
            demands = demand_map(eta)
            # Self-infeasible t-intervals never enter the graph (they
            # can never be captured) but still count in the totals.
            if any(len(resources) > budget.at(chronon)
                   for chronon, resources in demands.items()):
                continue
            key = (eta.profile_id, eta.tinterval_id)
            self._etas[key] = eta
            self._demands[key] = demands
            neighbors: set[TKey] = set()
            for chronon, resources in demands.items():
                capacity = budget.at(chronon)
                classes = self._by_chronon.setdefault(chronon, {})
                for other_set, members in classes.items():
                    if other_set == resources:
                        continue
                    if len(other_set | resources) > capacity:
                        neighbors.update(members)
                        for member in members:
                            self._adjacency[member].add(key)
                classes.setdefault(resources, set()).add(key)
            self._adjacency[key] = neighbors
        return profile_id

    def remove_profile(self, profile_id: int) -> None:
        """Cancel a registered profile, unlinking all its t-intervals."""
        profile = self._profiles.pop(profile_id, None)
        if profile is None:
            raise ModelError(f"unknown profile id {profile_id!r}")
        for eta in profile:
            key = (eta.profile_id, eta.tinterval_id)
            demands = self._demands.pop(key, None)
            if demands is None:
                continue  # was self-infeasible: never linked
            self._etas.pop(key)
            for neighbor in self._adjacency.pop(key):
                self._adjacency[neighbor].discard(key)
            for chronon, resources in demands.items():
                classes = self._by_chronon[chronon]
                members = classes[resources]
                members.discard(key)
                if not members:
                    del classes[resources]
                    if not classes:
                        del self._by_chronon[chronon]

    # ------------------------------------------------------------------
    # Solve
    # ------------------------------------------------------------------

    def resolve(self) -> SimulationResult:
        """Re-solve over the live set; from-scratch-identical result.

        The decomposition and unwind run fresh over the maintained
        adjacency (see the module docstring for why); the live
        assigner is then *diffed* to the new acceptance — only departed
        and newly-accepted t-intervals touch the matching structures.
        """
        started = time.perf_counter()
        keys: list[TKey] = sorted(self._adjacency)
        guidance = fractional_guidance(
            keys, self._etas, self.epoch, self.budget, True,
            self._demands, use_lp=self._use_lp,
            max_lp_variables=self._max_lp_variables)
        stack = _decompose_fast(keys, self._etas, self._adjacency,
                                guidance)

        # The fresh unwind fixes the accepted set and the reported
        # probe schedule (insertion order matters to Schedule output,
        # so the report must come from an assigner filled in unwind
        # order, exactly like the batch solver's).
        fresh = ProbeAssigner(self.epoch, self.budget, fast=True)
        accepted: list[TKey] = []
        accepted_set: set[TKey] = set()
        etas = self._etas
        for key in reversed(stack):
            if fresh.try_add(etas[key]):
                accepted.append(key)
                accepted_set.add(key)
        leftovers = sorted(
            (key for key in keys if key not in accepted_set),
            key=lambda key: (etas[key].size, etas[key].latest_finish,
                             key),
        )
        for key in leftovers:
            if fresh.try_add(etas[key]):
                accepted.append(key)
                accepted_set.add(key)
        schedule = fresh.schedule()

        # Diff the live assigner toward the new acceptance. Removals
        # first: survivors plus newcomers are a subset of the (feasible)
        # new acceptance at every intermediate step, so each try_add is
        # guaranteed to succeed for unit-width inputs.
        for key in [k for k in self._accepted if k not in accepted_set]:
            self._assigner.remove(self._accepted.pop(key))
        for key in accepted:
            if key not in self._accepted:
                if not self._assigner.try_add(etas[key]):
                    raise ModelError(
                        f"live assigner rejected {key!r} accepted by "
                        "the fresh unwind — matching state corrupted")
                self._accepted[key] = etas[key]

        runtime = time.perf_counter() - started
        accepted_by_profile: dict[int, int] = {}
        for profile_id, _tinterval_id in accepted:
            accepted_by_profile[profile_id] = (
                accepted_by_profile.get(profile_id, 0) + 1)
        per_profile = {
            profile_id: (accepted_by_profile.get(profile_id, 0),
                         len(profile))
            for profile_id, profile in sorted(self._profiles.items())
        }
        per_rank: dict[int, tuple[int, int]] = {}
        total = 0
        for _profile_id, profile in sorted(self._profiles.items()):
            total += len(profile)
            for eta in profile:
                hits, rank_total = per_rank.get(eta.size, (0, 0))
                hit = (eta.profile_id, eta.tinterval_id) in accepted_set
                per_rank[eta.size] = (hits + int(hit), rank_total + 1)
        report = CompletenessReport(
            captured=len(accepted),
            total=total,
            per_profile=per_profile,
            per_rank=per_rank,
        )
        live_set = ProfileSet(
            [profile for _pid, profile in sorted(self._profiles.items())])
        with_free_riders = evaluate_schedule(live_set, schedule)
        return SimulationResult(
            label="offline-approx",
            schedule=schedule,
            report=report,
            probes_used=len(schedule),
            runtime_seconds=runtime,
            extras={
                "accepted": float(len(accepted)),
                "candidates": float(len(keys)),
                "unit_width_input": 1.0,
                "gc_with_free_riders": with_free_riders.gc,
                "fast_engine": 1.0,
                "incremental": 1.0,
            },
        )

    def live_schedule(self):
        """The live assigner's current schedule (diff-maintained)."""
        return self._assigner.schedule()

    def close(self) -> None:
        """Epoch teardown: drop all state and the shared demand cache."""
        self._profiles.clear()
        self._etas.clear()
        self._demands.clear()
        self._adjacency.clear()
        self._by_chronon.clear()
        self._accepted.clear()
        self._assigner = ProbeAssigner(self.epoch, self.budget, fast=True)
        clear_demand_cache()
