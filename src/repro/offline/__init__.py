"""Offline solvers: exact enumeration, MILP, and the Local-Ratio scheme."""

from repro.offline.conflict import (
    clear_demand_cache,
    demand_map,
    overlap_adjacency,
    overlap_graph,
    self_infeasible,
    unit_conflict_adjacency,
    unit_conflict_graph,
)
from repro.offline.enumeration import EnumerationSolver
from repro.offline.greedy import GreedyOfflineSolver
from repro.offline.incremental import IncrementalLocalRatio
from repro.offline.local_ratio import (
    LocalRatioApproximation,
    fractional_guidance,
)
from repro.offline.matching import ProbeAssigner
from repro.offline.milp import MILPSolver
from repro.offline.transform import UnitWidthExpansion, expand_to_unit_width

__all__ = [
    "EnumerationSolver",
    "GreedyOfflineSolver",
    "IncrementalLocalRatio",
    "LocalRatioApproximation",
    "MILPSolver",
    "ProbeAssigner",
    "UnitWidthExpansion",
    "clear_demand_cache",
    "demand_map",
    "expand_to_unit_width",
    "fractional_guidance",
    "overlap_adjacency",
    "overlap_graph",
    "self_infeasible",
    "unit_conflict_adjacency",
    "unit_conflict_graph",
]
