"""A greedy offline baseline (no local-ratio machinery).

Sorts all t-intervals cheapest-and-most-urgent first (fewest EIs, then
earliest latest-finish) and accepts each one that stays jointly
schedulable. This isolates the value of the Local-Ratio decomposition in
ablations: both solvers share the exact matching-based feasibility check
and differ only in the acceptance *order*.
"""

from __future__ import annotations

import time

from repro.core.budget import BudgetVector
from repro.core.completeness import CompletenessReport, evaluate_schedule
from repro.core.profile import ProfileSet
from repro.core.timeline import Epoch
from repro.offline.matching import ProbeAssigner
from repro.simulation.result import SimulationResult

__all__ = ["GreedyOfflineSolver"]


class GreedyOfflineSolver:
    """Accept t-intervals greedily in (size, deadline) order.

    ``fast`` selects the matcher's accelerated mode (Hall-style
    prechecks, unit shortcut); accept/reject outcomes are identical
    either way — the flag exists so ablations can time both.
    """

    def __init__(self, fast: bool = True) -> None:
        self._fast = fast

    def solve(self, profiles: ProfileSet, epoch: Epoch,
              budget: BudgetVector) -> SimulationResult:
        """Produce a feasible schedule; completeness = accepted set."""
        started = time.perf_counter()
        order = sorted(
            profiles.tintervals(),
            key=lambda eta: (eta.size, eta.latest_finish,
                             eta.profile_id, eta.tinterval_id),
        )
        assigner = ProbeAssigner(epoch, budget, fast=self._fast)
        accepted_keys: set[tuple[int, int]] = set()
        for eta in order:
            if assigner.try_add(eta):
                accepted_keys.add((eta.profile_id, eta.tinterval_id))

        schedule = assigner.schedule()
        per_profile = {
            profile.profile_id: (
                sum(1 for eta in profile
                    if (eta.profile_id, eta.tinterval_id)
                    in accepted_keys),
                len(profile),
            )
            for profile in profiles
        }
        per_rank: dict[int, tuple[int, int]] = {}
        for eta in profiles.tintervals():
            hits, total = per_rank.get(eta.size, (0, 0))
            hit = (eta.profile_id, eta.tinterval_id) in accepted_keys
            per_rank[eta.size] = (hits + int(hit), total + 1)
        report = CompletenessReport(
            captured=len(accepted_keys),
            total=profiles.total_tintervals,
            per_profile=per_profile,
            per_rank=per_rank,
        )
        runtime = time.perf_counter() - started
        return SimulationResult(
            label="offline-greedy",
            schedule=schedule,
            report=report,
            probes_used=len(schedule),
            runtime_seconds=runtime,
            extras={
                "gc_with_free_riders":
                    evaluate_schedule(profiles, schedule).gc,
            },
        )
