"""The P -> P^[1] transformation (Proposition 2 machinery).

Proposition 2 lets an algorithm for unit-width profiles (``P^[1]``) serve
general profiles. The paper notes the transformation from the general
setting to the split-interval setting may be exponential; this module
implements that honest, exponential expansion:

    every general t-interval ``eta = {I_1, ..., I_k}`` becomes the family
    of *alternative* unit-width t-intervals
    ``{(c_1, ..., c_k) : c_i in window(I_i)}`` — capturing any one
    alternative captures ``eta`` (a probe tuple hitting one chronon per
    EI window is exactly a capture of ``eta``).

The expansion tracks the alternative -> original mapping so solutions on
the expansion evaluate back on the original instance, and guards against
combinatorial explosion with a configurable cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.core.errors import SolverCapacityError
from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.profile import Profile, ProfileSet
from repro.core.schedule import Schedule

__all__ = ["UnitWidthExpansion", "expand_to_unit_width"]

TKey = tuple[int, int]


@dataclass(frozen=True, slots=True)
class UnitWidthExpansion:
    """Result of expanding a general profile set to ``P^[1]`` form.

    Attributes
    ----------
    original:
        The profile set that was expanded.
    expanded:
        A ``P^[1]`` profile set; one profile per original profile, whose
        t-intervals are all alternatives of all original t-intervals.
    alternative_of:
        Maps each expanded t-interval key ``(profile_id, tinterval_id)``
        to its original t-interval key.
    """

    original: ProfileSet
    expanded: ProfileSet
    alternative_of: dict[TKey, TKey]

    def captured_originals(self, schedule: Schedule) -> set[TKey]:
        """Original t-intervals captured by a schedule on the expansion.

        Because an alternative is captured exactly when its chronon tuple
        is fully probed, an original t-interval is captured iff any of its
        alternatives is — which coincides with direct evaluation of the
        schedule against the original windows.
        """
        captured: set[TKey] = set()
        for profile in self.original:
            for eta in profile:
                if schedule.captures_tinterval(eta):
                    captured.add((eta.profile_id, eta.tinterval_id))
        return captured

    def alternatives_of(self, original_key: TKey) -> list[TKey]:
        """All expanded alternatives of one original t-interval."""
        return [expanded_key
                for expanded_key, owner in self.alternative_of.items()
                if owner == original_key]


def expand_to_unit_width(profiles: ProfileSet,
                         max_alternatives: int = 100_000
                         ) -> UnitWidthExpansion:
    """Expand every t-interval into its unit-width alternatives.

    Parameters
    ----------
    profiles:
        The general profile set.
    max_alternatives:
        Total cap on generated alternatives; exceeded caps raise
        :class:`SolverCapacityError` (the expansion is exponential in the
        t-interval rank: ``prod_i width(I_i)`` alternatives each).
    """
    expanded_profiles: list[Profile] = []
    pending_map: list[list[TKey]] = []  # per profile: owner of each new eta
    total = 0
    for profile in profiles:
        new_tintervals: list[TInterval] = []
        owners: list[TKey] = []
        for eta in profile:
            count = 1
            for ei in eta:
                count *= ei.width
                if count > max_alternatives:
                    raise SolverCapacityError(
                        f"expansion of t-interval "
                        f"({eta.profile_id},{eta.tinterval_id}) exceeds "
                        f"{max_alternatives} alternatives"
                    )
            total += count
            if total > max_alternatives:
                raise SolverCapacityError(
                    f"expansion exceeds {max_alternatives} total "
                    f"alternatives"
                )
            windows = [ei.chronons() for ei in eta]
            resources = [ei.resource_id for ei in eta]
            for tuple_choice in product(*windows):
                new_tintervals.append(TInterval([
                    ExecutionInterval(resource, chronon, chronon)
                    for resource, chronon in zip(resources, tuple_choice)
                ]))
                owners.append((eta.profile_id, eta.tinterval_id))
        expanded_profiles.append(Profile(new_tintervals,
                                         name=f"{profile.name}[1]"))
        pending_map.append(owners)

    expanded = ProfileSet(expanded_profiles)
    alternative_of: dict[TKey, TKey] = {}
    for profile, owners in zip(expanded, pending_map):
        for eta, owner in zip(profile, owners):
            alternative_of[(eta.profile_id, eta.tinterval_id)] = owner
    return UnitWidthExpansion(original=profiles, expanded=expanded,
                              alternative_of=alternative_of)
