"""Conflict structure of t-intervals (split-interval graphs).

The Local-Ratio approximation (Section 4.1.2) works on the *conflict graph*
of t-intervals. For unit-width instances (``P^[1]``) the conflict relation
is exact:

    two t-intervals conflict at chronon ``j`` with budget ``C_j`` iff the
    union of the *distinct resources* both need at ``j`` exceeds ``C_j``
    (EIs of the same resource at the same chronon share one probe, so they
    never conflict with each other).

For general instances we use the conservative *time-overlap* relation —
two t-intervals are neighbors when any of their EI windows intersect in
time — which over-approximates true conflicts; the Local-Ratio unwind then
enforces real feasibility by matching (see ``local_ratio``).

Two constructions exist for each relation:

* the **reference** builders (:func:`unit_conflict_graph`,
  :func:`overlap_graph`) return ``networkx`` graphs and spell the conflict
  definitions out pair by pair — they are the executable specification;
* the **fast** builders (:func:`unit_conflict_adjacency`,
  :func:`overlap_adjacency`) produce the *same* edge set as plain
  ``dict[TKey, set[TKey]]`` adjacency via chronon-indexed sweeps, keeping
  networkx off the hot path. ``tests/properties`` proves the edge sets
  coincide.
"""

from __future__ import annotations

from functools import lru_cache

import networkx as nx

from repro.core.budget import BudgetVector
from repro.core.intervals import ExecutionInterval, TInterval
from repro.core.profile import ProfileSet

__all__ = [
    "clear_demand_cache",
    "demand_map",
    "unit_conflict_graph",
    "unit_conflict_adjacency",
    "overlap_graph",
    "overlap_adjacency",
    "self_infeasible",
]

# Key type for t-intervals in graphs: (profile_id, tinterval_id).
TKey = tuple[int, int]

# Adjacency form of a conflict graph: key -> set of conflicting keys.
Adjacency = dict[TKey, set[TKey]]


@lru_cache(maxsize=65536)
def _demand_map_cached(
        eis: tuple[ExecutionInterval, ...]) -> dict[int, frozenset[int]]:
    """``chronon -> resources`` demanded by unit-width EIs, memoized.

    Keyed on the (hashable, immutable) EI tuple so every consumer of the
    same t-interval — ``self_infeasible``, graph construction, the LP
    guidance — shares one computation. The returned mapping is shared:
    callers must not mutate it, hence the frozensets.
    """
    demands: dict[int, set[int]] = {}
    for ei in eis:
        if ei.is_unit:
            demands.setdefault(ei.start, set()).add(ei.resource_id)
    return {chronon: frozenset(resources)
            for chronon, resources in demands.items()}


def clear_demand_cache() -> None:
    """Drop every memoized demand map.

    The cache is already size-bounded, but long-lived churn-heavy
    processes (the live proxy service, the incremental offline solver)
    accumulate maps for t-intervals that no longer exist anywhere. Call
    this on epoch teardown — after a churn sweep, when an
    :class:`~repro.offline.incremental.IncrementalLocalRatio` closes —
    to release them eagerly.
    """
    _demand_map_cached.cache_clear()


def demand_map(eta: TInterval) -> dict[int, frozenset[int]]:
    """``chronon -> set of resources`` the t-interval needs, unit-width EIs.

    Only meaningful for unit-width t-intervals: a unit EI *must* be probed
    at its single chronon. EIs of the same resource at the same chronon
    merge into one demand. Results are cached per EI tuple (the map is
    consulted once per pair during conflict construction and again by the
    LP guidance); treat the returned mapping as read-only.
    """
    return _demand_map_cached(eta.eis)


def self_infeasible(eta: TInterval, budget: BudgetVector) -> bool:
    """True when a t-interval alone exceeds the budget somewhere.

    Such t-intervals can never be captured (they need more simultaneous
    probes than the budget allows) and are excluded up front.

    Unit-width t-intervals are checked chronon by chronon: the distinct
    resources demanded at ``j`` must fit ``C_j``. General t-intervals get
    the pigeonhole generalization of the same argument: for every chronon
    window ``[a, b]``, the EIs whose whole window lies inside ``[a, b]``
    must all be probed within it, and distinct resources need distinct
    probes — so if they reference more distinct resources than the
    window's total budget, the t-interval is doomed regardless of how the
    probes are placed. (Only EI endpoint pairs need checking; any other
    window confines a subset of the EIs one of those windows confines.)
    """
    demands = demand_map(eta)
    if any(len(resources) > budget.at(chronon)
           for chronon, resources in demands.items()):
        return True
    if eta.is_unit_width:
        return False
    starts = sorted({ei.start for ei in eta})
    finishes = sorted({ei.finish for ei in eta})
    for first in starts:
        for last in finishes:
            if last < first:
                continue
            confined = {ei.resource_id for ei in eta
                        if first <= ei.start and ei.finish <= last}
            if len(confined) > budget.total_between(first, last):
                return True
    return False


# ----------------------------------------------------------------------
# Reference constructions (networkx, pairwise — the specification)
# ----------------------------------------------------------------------


def unit_conflict_graph(profiles: ProfileSet,
                        budget: BudgetVector) -> nx.Graph:
    """Exact conflict graph of a ``P^[1]`` profile set.

    Nodes are ``(profile_id, tinterval_id)`` keys; node attribute ``eta``
    holds the t-interval. Self-infeasible t-intervals are omitted.

    Raises
    ------
    ValueError
        If the profile set is not unit-width.
    """
    if not profiles.is_unit_width:
        raise ValueError("unit_conflict_graph requires a P^[1] profile set")
    graph = nx.Graph()
    demands: dict[TKey, dict[int, frozenset[int]]] = {}
    for eta in profiles.tintervals():
        if self_infeasible(eta, budget):
            continue
        key = (eta.profile_id, eta.tinterval_id)
        graph.add_node(key, eta=eta)
        demands[key] = demand_map(eta)

    # Index t-intervals by chronon for pairwise checks.
    by_chronon: dict[int, list[TKey]] = {}
    for key, demand in demands.items():
        for chronon in demand:
            by_chronon.setdefault(chronon, []).append(key)

    for chronon, keys in by_chronon.items():
        capacity = budget.at(chronon)
        for index, left in enumerate(keys):
            left_resources = demands[left][chronon]
            for right in keys[index + 1:]:
                joint = left_resources | demands[right][chronon]
                if len(joint) > capacity:
                    graph.add_edge(left, right)
    return graph


def overlap_graph(profiles: ProfileSet) -> nx.Graph:
    """Conservative time-overlap graph for general profile sets.

    Two t-intervals are adjacent when any pair of their EI windows
    intersects in time (regardless of resource). This is a superset of the
    true conflict relation; used only to drive the Local-Ratio weight
    decomposition for non-unit instances.
    """
    graph = nx.Graph()
    spans: list[tuple[TKey, int, int]] = []
    for eta in profiles.tintervals():
        key = (eta.profile_id, eta.tinterval_id)
        graph.add_node(key, eta=eta)
        spans.append((key, eta.earliest_start, eta.latest_finish))

    # Sweep over span intersections; per-EI precision is applied pairwise.
    etas = {key: graph.nodes[key]["eta"] for key, _s, _f in spans}
    spans.sort(key=lambda item: item[1])
    for index, (left_key, left_start, left_finish) in enumerate(spans):
        for right_key, right_start, _right_finish in spans[index + 1:]:
            if right_start > left_finish:
                break
            if _eis_overlap(etas[left_key], etas[right_key]):
                graph.add_edge(left_key, right_key)
    return graph


def _eis_overlap(left: TInterval, right: TInterval) -> bool:
    """True if any EI window of ``left`` intersects any of ``right``."""
    for ei_left in left:
        for ei_right in right:
            if ei_left.overlaps(ei_right):
                return True
    return False


# ----------------------------------------------------------------------
# Fast constructions (chronon-indexed sweeps, plain-dict adjacency)
# ----------------------------------------------------------------------


def unit_conflict_adjacency(
        profiles: ProfileSet, budget: BudgetVector,
) -> tuple[dict[TKey, TInterval], Adjacency]:
    """Sweep-line equivalent of :func:`unit_conflict_graph`.

    Returns ``(etas, adjacency)`` with exactly the node and edge sets of
    the reference graph. Per chronon, t-intervals are grouped into
    *demand classes* (identical resource sets demanded at that chronon):
    two members of one class never conflict (their union is the class
    set, which fits the budget once self-infeasible t-intervals are
    dropped), and the union-size test runs once per class pair instead of
    once per t-interval pair.

    Raises
    ------
    ValueError
        If the profile set is not unit-width.
    """
    if not profiles.is_unit_width:
        raise ValueError("unit_conflict_adjacency requires a P^[1] "
                         "profile set")
    etas: dict[TKey, TInterval] = {}
    adjacency: Adjacency = {}
    # chronon -> demand class (resource frozenset) -> member keys.
    by_chronon: dict[int, dict[frozenset[int], list[TKey]]] = {}
    for eta in profiles.tintervals():
        demands = demand_map(eta)
        # Inline of self_infeasible for the unit case (every EI of a
        # P^[1] t-interval is unit), sharing the one demand-map lookup.
        if any(len(resources) > budget.at(chronon)
               for chronon, resources in demands.items()):
            continue
        key = (eta.profile_id, eta.tinterval_id)
        etas[key] = eta
        adjacency[key] = set()
        for chronon, resources in demands.items():
            by_chronon.setdefault(chronon, {}) \
                .setdefault(resources, []).append(key)

    for chronon, classes in by_chronon.items():
        capacity = budget.at(chronon)
        groups = list(classes.items())
        for index, (left_set, left_keys) in enumerate(groups):
            for right_set, right_keys in groups[index + 1:]:
                if len(left_set | right_set) <= capacity:
                    continue
                for left in left_keys:
                    neighbors = adjacency[left]
                    for right in right_keys:
                        neighbors.add(right)
                        adjacency[right].add(left)
    return etas, adjacency


def overlap_adjacency(
        profiles: ProfileSet, budget: BudgetVector | None = None,
) -> tuple[dict[TKey, TInterval], Adjacency]:
    """Sweep-line equivalent of :func:`overlap_graph`.

    Emits an edge exactly when two t-intervals have EI windows sharing a
    chronon — the same relation the reference computes pairwise — by
    sweeping EI start/finish events and connecting each starting EI's
    owner to every t-interval currently holding an active EI.

    When ``budget`` is given, self-infeasible t-intervals are excluded up
    front (matching the node removal the reference solve path performs
    after building the full graph).
    """
    etas: dict[TKey, TInterval] = {}
    adjacency: Adjacency = {}
    # (chronon, kind, key): starts (kind 0) precede finishes (kind 1) at
    # the same chronon, so windows touching at one chronon do overlap.
    events: list[tuple[int, int, TKey]] = []
    for eta in profiles.tintervals():
        if budget is not None and self_infeasible(eta, budget):
            continue
        key = (eta.profile_id, eta.tinterval_id)
        etas[key] = eta
        adjacency[key] = set()
        for ei in eta:
            events.append((ei.start, 0, key))
            events.append((ei.finish, 1, key))
    events.sort()

    active: dict[TKey, int] = {}  # key -> number of currently-active EIs
    for _chronon, kind, key in events:
        if kind == 0:
            neighbors = adjacency[key]
            for other in active:
                if other != key:
                    neighbors.add(other)
                    adjacency[other].add(key)
            active[key] = active.get(key, 0) + 1
        else:
            remaining = active[key] - 1
            if remaining:
                active[key] = remaining
            else:
                del active[key]
    return etas, adjacency
