"""Conflict structure of t-intervals (split-interval graphs).

The Local-Ratio approximation (Section 4.1.2) works on the *conflict graph*
of t-intervals. For unit-width instances (``P^[1]``) the conflict relation
is exact:

    two t-intervals conflict at chronon ``j`` with budget ``C_j`` iff the
    union of the *distinct resources* both need at ``j`` exceeds ``C_j``
    (EIs of the same resource at the same chronon share one probe, so they
    never conflict with each other).

For general instances we use the conservative *time-overlap* relation —
two t-intervals are neighbors when any of their EI windows intersect in
time — which over-approximates true conflicts; the Local-Ratio unwind then
enforces real feasibility by matching (see ``local_ratio``).
"""

from __future__ import annotations

import networkx as nx

from repro.core.budget import BudgetVector
from repro.core.intervals import TInterval
from repro.core.profile import ProfileSet

__all__ = [
    "demand_map",
    "unit_conflict_graph",
    "overlap_graph",
    "self_infeasible",
]

# Key type for t-intervals in graphs: (profile_id, tinterval_id).
TKey = tuple[int, int]


def demand_map(eta: TInterval) -> dict[int, set[int]]:
    """``chronon -> set of resources`` the t-interval needs, unit-width EIs.

    Only meaningful for unit-width t-intervals: a unit EI *must* be probed
    at its single chronon. EIs of the same resource at the same chronon
    merge into one demand.
    """
    demands: dict[int, set[int]] = {}
    for ei in eta:
        demands.setdefault(ei.start, set()).add(ei.resource_id)
    return demands


def self_infeasible(eta: TInterval, budget: BudgetVector) -> bool:
    """True when a unit-width t-interval alone exceeds some chronon budget.

    Such t-intervals can never be captured (they need more simultaneous
    probes than the budget allows) and are excluded up front.
    """
    if not eta.is_unit_width:
        return False
    return any(len(resources) > budget.at(chronon)
               for chronon, resources in demand_map(eta).items())


def unit_conflict_graph(profiles: ProfileSet,
                        budget: BudgetVector) -> nx.Graph:
    """Exact conflict graph of a ``P^[1]`` profile set.

    Nodes are ``(profile_id, tinterval_id)`` keys; node attribute ``eta``
    holds the t-interval. Self-infeasible t-intervals are omitted.

    Raises
    ------
    ValueError
        If the profile set is not unit-width.
    """
    if not profiles.is_unit_width:
        raise ValueError("unit_conflict_graph requires a P^[1] profile set")
    graph = nx.Graph()
    demands: dict[TKey, dict[int, set[int]]] = {}
    for eta in profiles.tintervals():
        if self_infeasible(eta, budget):
            continue
        key = (eta.profile_id, eta.tinterval_id)
        graph.add_node(key, eta=eta)
        demands[key] = demand_map(eta)

    # Index t-intervals by chronon for pairwise checks.
    by_chronon: dict[int, list[TKey]] = {}
    for key, demand in demands.items():
        for chronon in demand:
            by_chronon.setdefault(chronon, []).append(key)

    for chronon, keys in by_chronon.items():
        capacity = budget.at(chronon)
        for index, left in enumerate(keys):
            left_resources = demands[left][chronon]
            for right in keys[index + 1:]:
                joint = left_resources | demands[right][chronon]
                if len(joint) > capacity:
                    graph.add_edge(left, right)
    return graph


def overlap_graph(profiles: ProfileSet) -> nx.Graph:
    """Conservative time-overlap graph for general profile sets.

    Two t-intervals are adjacent when any pair of their EI windows
    intersects in time (regardless of resource). This is a superset of the
    true conflict relation; used only to drive the Local-Ratio weight
    decomposition for non-unit instances.
    """
    graph = nx.Graph()
    spans: list[tuple[TKey, int, int]] = []
    for eta in profiles.tintervals():
        key = (eta.profile_id, eta.tinterval_id)
        graph.add_node(key, eta=eta)
        spans.append((key, eta.earliest_start, eta.latest_finish))

    # Sweep over span intersections; per-EI precision is applied pairwise.
    etas = {key: graph.nodes[key]["eta"] for key, _s, _f in spans}
    spans.sort(key=lambda item: item[1])
    for index, (left_key, left_start, left_finish) in enumerate(spans):
        for right_key, right_start, _right_finish in spans[index + 1:]:
            if right_start > left_finish:
                break
            if _eis_overlap(etas[left_key], etas[right_key]):
                graph.add_edge(left_key, right_key)
    return graph


def _eis_overlap(left: TInterval, right: TInterval) -> bool:
    """True if any EI window of ``left`` intersects any of ``right``."""
    for ei_left in left:
        for ei_right in right:
            if ei_left.overlaps(ei_right):
                return True
    return False
