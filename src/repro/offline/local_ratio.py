"""Offline approximation via the (fractional) Local-Ratio scheme.

Section 4.1.2: the paper adopts Bar-Yehuda et al.'s Local-Ratio algorithm
for scheduling split intervals (t-intervals), which guarantees a
``2k``-approximation on ``P^[1]`` inputs with ``C_max = 1`` (``2k + 1`` for
``C_max > 1``) and, lifted through Proposition 2, ``2k + 2`` /
``2k + 3``-approximations on general inputs.

Implementation outline (fractional local ratio, LP solved once):

1. **Filter** self-infeasible t-intervals (need more simultaneous probes
   than the budget allows).
2. **Fractional guidance** ``x*``: for ``P^[1]`` inputs we solve the LP
   relaxation ``max sum x_eta`` s.t. per chronon
   ``sum_eta load_eta(j) * x_eta <= C_j``, where ``load_eta(j)`` counts the
   distinct resources ``eta`` needs at ``j``. For general inputs the
   window-smeared density ``sum_{EI active at j} 1/width(EI)`` is used
   (guidance only — the formal ratio is stated for ``P^[1]``, matching the
   setting the paper evaluates the approximation in, cf. §5.3). The
   solved ``x*`` is quantized to integers (scaled by ``2**20``) so both
   decomposition engines below manipulate exact arithmetic — identical
   argmin selections regardless of summation order.
3. **Weight decomposition**: repeatedly pick the remaining t-interval
   minimizing ``(x*-mass of its closed neighborhood, latest finish, key)``
   in the conflict graph, subtract its weight from that neighborhood, and
   push it on a stack — the classic local-ratio round.
4. **Unwind** in reverse stack order, greedily accepting every t-interval
   that stays *jointly schedulable* with the accepted set; schedulability
   and the final probe schedule come from incremental bipartite matching
   (:class:`repro.offline.matching.ProbeAssigner`).

Two engines implement steps 1 and 3 (mirroring the online simulator's
fast/reference split):

* ``engine="reference"`` — networkx conflict graphs built pairwise and a
  per-round full rescan of the remaining t-intervals for the argmin: the
  executable specification, obviously correct and obviously slow;
* ``engine="fast"`` (default) — sweep-line adjacency dictionaries
  (:func:`repro.offline.conflict.unit_conflict_adjacency` /
  :func:`~repro.offline.conflict.overlap_adjacency`), incrementally
  maintained neighborhood masses in a lazy min-heap with stale-entry
  invalidation (``O(deg log m)`` per round), and the accelerated
  matcher mode.

Both engines produce the *identical* accepted t-interval set, probe
schedule, and gained completeness — proven per instance by the
property suite (``tests/properties/test_prop_offline_fast.py``).

Gained completeness is evaluated against the produced schedule, so any
free-rider captures (shared probes) are credited.
"""

from __future__ import annotations

import heapq
import time

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.core.budget import BudgetVector
from repro.core.completeness import CompletenessReport, evaluate_schedule
from repro.core.intervals import TInterval
from repro.core.profile import ProfileSet
from repro.core.timeline import Epoch
from repro.offline.conflict import (
    Adjacency,
    demand_map,
    overlap_adjacency,
    overlap_graph,
    self_infeasible,
    unit_conflict_adjacency,
    unit_conflict_graph,
)
from repro.offline.matching import ProbeAssigner
from repro.simulation.result import SimulationResult

__all__ = ["LocalRatioApproximation", "fractional_guidance"]

TKey = tuple[int, int]

#: Fixed-point scale for guidance weights: LP solutions in ``[0, 1]`` map
#: to integers in ``[0, 2**20]``, making neighborhood-mass comparisons
#: exact (and therefore engine-independent).
GUIDANCE_SCALE = 1 << 20


class LocalRatioApproximation:
    """The paper's offline approximation (Local-Ratio + matching).

    Parameters
    ----------
    use_lp:
        Solve the guidance LP (default). When False — or when the LP
        exceeds ``max_lp_variables`` — uniform guidance is used instead,
        degrading gracefully to plain (non-fractional) local ratio.
    max_lp_variables:
        Cap on LP variable count before falling back to uniform guidance.
    engine:
        ``"fast"`` (default) for the indexed pipeline, ``"reference"``
        for the pairwise/rescan specification. Results are identical;
        only the wall time differs.
    """

    def __init__(self, use_lp: bool = True,
                 max_lp_variables: int = 50_000,
                 engine: str = "fast") -> None:
        if engine not in ("fast", "reference"):
            raise ValueError(
                f"unknown engine {engine!r}; choose 'fast' or 'reference'")
        self._use_lp = use_lp
        self._max_lp_variables = max_lp_variables
        self._engine = engine

    def solve(self, profiles: ProfileSet, epoch: Epoch,
              budget: BudgetVector) -> SimulationResult:
        """Produce an approximate schedule and its completeness report."""
        started = time.perf_counter()
        fast = self._engine == "fast"

        is_unit = profiles.is_unit_width
        if fast:
            if is_unit:
                etas, adjacency = unit_conflict_adjacency(profiles, budget)
            else:
                etas, adjacency = overlap_adjacency(profiles, budget)
            keys: list[TKey] = sorted(adjacency)
        else:
            if is_unit:
                graph = unit_conflict_graph(profiles, budget)
            else:
                graph = overlap_graph(profiles)
                for eta in profiles.tintervals():
                    if self_infeasible(eta, budget):
                        key = (eta.profile_id, eta.tinterval_id)
                        if graph.has_node(key):
                            graph.remove_node(key)
            keys = sorted(graph.nodes)
            etas = {key: graph.nodes[key]["eta"] for key in keys}
            adjacency = {key: set(graph.neighbors(key)) for key in keys}

        # One demand-map lookup per t-interval (the lru cache makes
        # repeats cheap, but hashing EI tuples is not free on hot paths).
        demands = ({key: demand_map(etas[key]) for key in keys}
                   if is_unit else {})
        guidance = fractional_guidance(
            keys, etas, epoch, budget, is_unit, demands,
            use_lp=self._use_lp,
            max_lp_variables=self._max_lp_variables)

        if fast:
            stack = _decompose_fast(keys, etas, adjacency, guidance)
        else:
            stack = _decompose_reference(keys, etas, adjacency, guidance)

        assigner = ProbeAssigner(epoch, budget, fast=fast)
        accepted: list[TKey] = []
        accepted_set: set[TKey] = set()
        for key in reversed(stack):
            if assigner.try_add(etas[key]):
                accepted.append(key)
                accepted_set.add(key)

        # Greedy completion: t-intervals whose weight was zeroed without
        # being pushed never reached the stack; trying them afterwards can
        # only grow the solution (feasibility is checked exactly), so the
        # local-ratio guarantee is preserved while practical completeness
        # improves. Order favors cheap, urgent t-intervals.
        leftovers = sorted(
            (key for key in keys if key not in accepted_set),
            key=lambda key: (etas[key].size, etas[key].latest_finish, key),
        )
        for key in leftovers:
            if assigner.try_add(etas[key]):
                accepted.append(key)
                accepted_set.add(key)

        schedule = assigner.schedule()
        runtime = time.perf_counter() - started

        # Paper-faithful accounting: the Local-Ratio scheme's completeness
        # is the size of the accepted (independent, schedulable) set — the
        # algorithm does not track captures its probes produce "for free"
        # on non-accepted t-intervals. Free-rider-credited completeness is
        # reported in extras for comparison.
        accepted_by_profile: dict[int, int] = {}
        for profile_id, _tinterval_id in accepted:
            accepted_by_profile[profile_id] = (
                accepted_by_profile.get(profile_id, 0) + 1)
        per_profile = {
            profile.profile_id: (
                accepted_by_profile.get(profile.profile_id, 0),
                len(profile),
            )
            for profile in profiles
        }
        per_rank: dict[int, tuple[int, int]] = {}
        for eta in profiles.tintervals():
            hits, total = per_rank.get(eta.size, (0, 0))
            hit = (eta.profile_id, eta.tinterval_id) in accepted_set
            per_rank[eta.size] = (hits + int(hit), total + 1)
        report = CompletenessReport(
            captured=len(accepted),
            total=profiles.total_tintervals,
            per_profile=per_profile,
            per_rank=per_rank,
        )
        with_free_riders = evaluate_schedule(profiles, schedule)
        return SimulationResult(
            label="offline-approx",
            schedule=schedule,
            report=report,
            probes_used=len(schedule),
            runtime_seconds=runtime,
            extras={
                "accepted": float(len(accepted)),
                "candidates": float(len(keys)),
                "unit_width_input": 1.0 if is_unit else 0.0,
                "gc_with_free_riders": with_free_riders.gc,
                "fast_engine": 1.0 if fast else 0.0,
            },
        )


# ----------------------------------------------------------------------
# Step 2: fractional guidance
# ----------------------------------------------------------------------


def fractional_guidance(
        keys: list[TKey], etas: dict[TKey, TInterval],
        epoch: Epoch, budget: BudgetVector, is_unit: bool,
        demands: dict[TKey, dict[int, frozenset[int]]],
        use_lp: bool = True,
        max_lp_variables: int = 50_000,
) -> dict[TKey, int]:
    """Quantized LP guidance, shared verbatim by every consumer.

    The constraint matrix is assembled straight into COO triplet
    arrays (one ``(row, col, load)`` per nonzero) and handed to
    scipy as CSR; the row order — and therefore the solver's chosen
    optimal vertex — is identical however the caller built the
    conflict structure, which keeps both decomposition engines (and the
    incremental solver's warm restarts) on equal guidance.
    """
    if not keys:
        return {}
    if not use_lp or len(keys) > max_lp_variables:
        return {key: GUIDANCE_SCALE for key in keys}

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    capacities: list[float] = []
    chronon_rows: dict[int, int] = {}

    def row_for(chronon: int) -> int:
        existing = chronon_rows.get(chronon)
        if existing is None:
            existing = len(capacities)
            chronon_rows[chronon] = existing
            capacities.append(float(budget.at(chronon)))
        return existing

    for column, key in enumerate(keys):
        eta = etas[key]
        if is_unit:
            for chronon, resources in sorted(
                    demands[key].items()):
                rows.append(row_for(chronon))
                cols.append(column)
                vals.append(float(len(resources)))
        else:
            loads: dict[int, float] = {}
            for ei in eta:
                smear = 1.0 / ei.width
                for chronon in range(max(1, ei.start),
                                     min(epoch.last, ei.finish) + 1):
                    loads[chronon] = loads.get(chronon, 0.0) + smear
            for chronon in sorted(loads):
                rows.append(row_for(chronon))
                cols.append(column)
                vals.append(loads[chronon])

    if not capacities:
        return {key: GUIDANCE_SCALE for key in keys}
    matrix = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(len(capacities), len(keys)))
    result = linprog(
        c=-np.ones(len(keys)),  # maximize sum x
        A_ub=matrix,
        b_ub=np.array(capacities),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if result.x is None:
        return {key: GUIDANCE_SCALE for key in keys}
    quantized = np.rint(np.asarray(result.x) * GUIDANCE_SCALE)
    return {key: max(0, int(quantized[column]))
            for column, key in enumerate(keys)}


# ----------------------------------------------------------------------
# Step 3: local-ratio weight decomposition (two engines, one outcome)
# ----------------------------------------------------------------------
#
# Selection rule (the contract both engines implement): each round chooses
# the remaining key minimizing ``(mass, latest_finish, key)``, where
# ``mass`` is the integer guidance of the key plus its still-remaining
# neighbors. The chosen key's (integer) weight is subtracted from its
# closed remaining neighborhood; keys at weight <= 0 leave ``remaining``.
# All arithmetic is integral, so the argmin is order-independent.

#: Initial (integer) local-ratio weight of every t-interval.
_INITIAL_WEIGHT = 1 << 20


def _decompose_reference(keys: list[TKey], etas: dict[TKey, TInterval],
                         adjacency: Adjacency,
                         guidance: dict[TKey, int]) -> list[TKey]:
    """The specification: recompute every mass, every round."""
    weights = {key: _INITIAL_WEIGHT for key in keys}
    remaining = set(keys)
    stack: list[TKey] = []

    def neighborhood_mass(key: TKey) -> int:
        mass = guidance[key]
        for neighbor in adjacency[key]:
            if neighbor in remaining:
                mass += guidance[neighbor]
        return mass

    while remaining:
        chosen = min(
            remaining,
            key=lambda key: (neighborhood_mass(key),
                             etas[key].latest_finish, key),
        )
        epsilon = weights[chosen]
        stack.append(chosen)
        affected = [chosen] + [neighbor for neighbor in adjacency[chosen]
                               if neighbor in remaining]
        for key in affected:
            weights[key] -= epsilon
            if weights[key] <= 0:
                remaining.discard(key)
    return stack


def _decompose_fast(keys: list[TKey], etas: dict[TKey, TInterval],
                    adjacency: Adjacency,
                    guidance: dict[TKey, int]) -> list[TKey]:
    """Lazy-heap engine: same selection rule, O(deg log m) per round.

    ``mass[key]`` is maintained incrementally — when a key leaves
    ``remaining``, its guidance is subtracted from every remaining
    neighbor's mass and a fresh heap entry is pushed for each (the dirty
    ones). A popped entry whose stored mass no longer matches the
    current mass is stale and skipped, so the heap top is always the
    true ``(mass, finish, key)`` argmin — identical to the reference's
    full rescan because the masses are exact integers.
    """
    remaining = set(keys)
    weights = {key: _INITIAL_WEIGHT for key in keys}
    finishes = {key: etas[key].latest_finish for key in keys}
    mass = {
        key: guidance[key] + sum(guidance[neighbor]
                                 for neighbor in adjacency[key])
        for key in keys
    }
    heap = [(mass[key], finishes[key], key) for key in keys]
    heapq.heapify(heap)
    stack: list[TKey] = []

    def retire(key: TKey) -> None:
        """Remove a key from play, dirtying its neighbors' masses."""
        remaining.discard(key)
        shed = guidance[key]
        for neighbor in adjacency[key]:
            if neighbor in remaining:
                if shed:
                    updated = mass[neighbor] - shed
                    mass[neighbor] = updated
                    heapq.heappush(
                        heap, (updated, finishes[neighbor], neighbor))

    while remaining:
        entry_mass, _finish, chosen = heapq.heappop(heap)
        if chosen not in remaining or entry_mass != mass[chosen]:
            continue  # stale (retired key or superseded dirty entry)
        epsilon = weights[chosen]
        stack.append(chosen)
        weights[chosen] = 0
        retire(chosen)
        for neighbor in adjacency[chosen]:
            if neighbor in remaining:
                weights[neighbor] -= epsilon
                if weights[neighbor] <= 0:
                    retire(neighbor)
    return stack
