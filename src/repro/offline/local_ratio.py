"""Offline approximation via the (fractional) Local-Ratio scheme.

Section 4.1.2: the paper adopts Bar-Yehuda et al.'s Local-Ratio algorithm
for scheduling split intervals (t-intervals), which guarantees a
``2k``-approximation on ``P^[1]`` inputs with ``C_max = 1`` (``2k + 1`` for
``C_max > 1``) and, lifted through Proposition 2, ``2k + 2`` /
``2k + 3``-approximations on general inputs.

Implementation outline (fractional local ratio, LP solved once):

1. **Filter** self-infeasible t-intervals (need more simultaneous probes
   than the budget allows).
2. **Fractional guidance** ``x*``: for ``P^[1]`` inputs we solve the LP
   relaxation ``max sum x_eta`` s.t. per chronon
   ``sum_eta load_eta(j) * x_eta <= C_j``, where ``load_eta(j)`` counts the
   distinct resources ``eta`` needs at ``j``. For general inputs the
   window-smeared density ``sum_{EI active at j} 1/width(EI)`` is used
   (guidance only — the formal ratio is stated for ``P^[1]``, matching the
   setting the paper evaluates the approximation in, cf. §5.3).
3. **Weight decomposition**: repeatedly pick the remaining t-interval
   minimizing the ``x*``-mass of its closed neighborhood in the conflict
   graph, subtract its weight from that neighborhood, and push it on a
   stack — the classic local-ratio round.
4. **Unwind** in reverse stack order, greedily accepting every t-interval
   that stays *jointly schedulable* with the accepted set; schedulability
   and the final probe schedule come from incremental bipartite matching
   (:class:`repro.offline.matching.ProbeAssigner`).

Gained completeness is evaluated against the produced schedule, so any
free-rider captures (shared probes) are credited.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.core.budget import BudgetVector
from repro.core.completeness import CompletenessReport, evaluate_schedule
from repro.core.intervals import TInterval
from repro.core.profile import ProfileSet
from repro.core.timeline import Epoch
from repro.offline.conflict import (
    overlap_graph,
    self_infeasible,
    unit_conflict_graph,
)
from repro.offline.matching import ProbeAssigner
from repro.simulation.result import SimulationResult

__all__ = ["LocalRatioApproximation"]

TKey = tuple[int, int]


class LocalRatioApproximation:
    """The paper's offline approximation (Local-Ratio + matching).

    Parameters
    ----------
    use_lp:
        Solve the guidance LP (default). When False — or when the LP
        exceeds ``max_lp_variables`` — uniform guidance is used instead,
        degrading gracefully to plain (non-fractional) local ratio.
    max_lp_variables:
        Cap on LP variable count before falling back to uniform guidance.
    """

    def __init__(self, use_lp: bool = True,
                 max_lp_variables: int = 50_000) -> None:
        self._use_lp = use_lp
        self._max_lp_variables = max_lp_variables

    def solve(self, profiles: ProfileSet, epoch: Epoch,
              budget: BudgetVector) -> SimulationResult:
        """Produce an approximate schedule and its completeness report."""
        started = time.perf_counter()

        is_unit = profiles.is_unit_width
        if is_unit:
            graph = unit_conflict_graph(profiles, budget)
        else:
            graph = overlap_graph(profiles)
            for eta in profiles.tintervals():
                if self_infeasible(eta, budget):
                    key = (eta.profile_id, eta.tinterval_id)
                    if graph.has_node(key):
                        graph.remove_node(key)

        keys: list[TKey] = sorted(graph.nodes)
        etas: dict[TKey, TInterval] = {
            key: graph.nodes[key]["eta"] for key in keys
        }

        guidance = self._fractional_guidance(keys, etas, epoch, budget,
                                             is_unit)

        stack = self._decompose(keys, etas, graph, guidance)

        assigner = ProbeAssigner(epoch, budget)
        accepted: list[TKey] = []
        accepted_set: set[TKey] = set()
        for key in reversed(stack):
            if assigner.try_add(etas[key]):
                accepted.append(key)
                accepted_set.add(key)

        # Greedy completion: t-intervals whose weight was zeroed without
        # being pushed never reached the stack; trying them afterwards can
        # only grow the solution (feasibility is checked exactly), so the
        # local-ratio guarantee is preserved while practical completeness
        # improves. Order favors cheap, urgent t-intervals.
        leftovers = sorted(
            (key for key in keys if key not in accepted_set),
            key=lambda key: (etas[key].size, etas[key].latest_finish, key),
        )
        for key in leftovers:
            if assigner.try_add(etas[key]):
                accepted.append(key)
                accepted_set.add(key)

        schedule = assigner.schedule()
        runtime = time.perf_counter() - started

        # Paper-faithful accounting: the Local-Ratio scheme's completeness
        # is the size of the accepted (independent, schedulable) set — the
        # algorithm does not track captures its probes produce "for free"
        # on non-accepted t-intervals. Free-rider-credited completeness is
        # reported in extras for comparison.
        accepted_by_profile: dict[int, int] = {}
        for profile_id, _tinterval_id in accepted:
            accepted_by_profile[profile_id] = (
                accepted_by_profile.get(profile_id, 0) + 1)
        per_profile = {
            profile.profile_id: (
                accepted_by_profile.get(profile.profile_id, 0),
                len(profile),
            )
            for profile in profiles
        }
        per_rank: dict[int, tuple[int, int]] = {}
        accepted_set_keys = set(accepted)
        for eta in profiles.tintervals():
            hits, total = per_rank.get(eta.size, (0, 0))
            hit = (eta.profile_id, eta.tinterval_id) in accepted_set_keys
            per_rank[eta.size] = (hits + int(hit), total + 1)
        report = CompletenessReport(
            captured=len(accepted),
            total=profiles.total_tintervals,
            per_profile=per_profile,
            per_rank=per_rank,
        )
        with_free_riders = evaluate_schedule(profiles, schedule)
        return SimulationResult(
            label="offline-approx",
            schedule=schedule,
            report=report,
            probes_used=len(schedule),
            runtime_seconds=runtime,
            extras={
                "accepted": float(len(accepted)),
                "candidates": float(len(keys)),
                "unit_width_input": 1.0 if is_unit else 0.0,
                "gc_with_free_riders": with_free_riders.gc,
            },
        )

    # ------------------------------------------------------------------
    # Step 2: fractional guidance
    # ------------------------------------------------------------------

    def _fractional_guidance(self, keys: list[TKey],
                             etas: dict[TKey, TInterval], epoch: Epoch,
                             budget: BudgetVector,
                             is_unit: bool) -> dict[TKey, float]:
        if not keys:
            return {}
        if not self._use_lp or len(keys) > self._max_lp_variables:
            return {key: 1.0 for key in keys}

        key_index = {key: i for i, key in enumerate(keys)}
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        capacities: list[float] = []
        chronon_rows: dict[int, int] = {}

        def row_for(chronon: int) -> int:
            existing = chronon_rows.get(chronon)
            if existing is None:
                existing = len(capacities)
                chronon_rows[chronon] = existing
                capacities.append(float(budget.at(chronon)))
            return existing

        for key in keys:
            eta = etas[key]
            loads: dict[int, float] = {}
            if is_unit:
                per_chronon_resources: dict[int, set[int]] = {}
                for ei in eta:
                    per_chronon_resources.setdefault(
                        ei.start, set()).add(ei.resource_id)
                for chronon, resources in per_chronon_resources.items():
                    loads[chronon] = float(len(resources))
            else:
                for ei in eta:
                    smear = 1.0 / ei.width
                    for chronon in range(max(1, ei.start),
                                         min(epoch.last, ei.finish) + 1):
                        loads[chronon] = loads.get(chronon, 0.0) + smear
            for chronon, load in loads.items():
                rows.append(row_for(chronon))
                cols.append(key_index[key])
                vals.append(load)

        if not capacities:
            return {key: 1.0 for key in keys}
        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(len(capacities), len(keys)))
        result = linprog(
            c=-np.ones(len(keys)),  # maximize sum x
            A_ub=matrix,
            b_ub=np.array(capacities),
            bounds=(0.0, 1.0),
            method="highs",
        )
        if result.x is None:
            return {key: 1.0 for key in keys}
        return {key: float(result.x[key_index[key]]) for key in keys}

    # ------------------------------------------------------------------
    # Step 3: local-ratio weight decomposition
    # ------------------------------------------------------------------

    @staticmethod
    def _decompose(keys: list[TKey], etas: dict[TKey, TInterval],
                   graph, guidance: dict[TKey, float]) -> list[TKey]:
        import heapq

        weights = {key: 1.0 for key in keys}
        remaining = set(keys)
        stack: list[TKey] = []

        def neighborhood_mass(key: TKey) -> float:
            mass = guidance.get(key, 1.0)
            for neighbor in graph.neighbors(key):
                if neighbor in remaining:
                    mass += guidance.get(neighbor, 1.0)
            return mass

        # Lazy min-heap: masses only decrease as keys leave ``remaining``,
        # so a popped entry is an upper bound on the key's current mass.
        # Re-evaluating on pop and comparing against the next stored entry
        # recovers the exact argmin without O(N^2) rescans.
        heap: list[tuple[float, int, TKey]] = [
            (neighborhood_mass(key), etas[key].latest_finish, key)
            for key in keys
        ]
        heapq.heapify(heap)

        while remaining:
            chosen: TKey | None = None
            while heap:
                _stale_mass, finish, key = heapq.heappop(heap)
                if key not in remaining:
                    continue
                current = neighborhood_mass(key)
                if not heap or current <= heap[0][0] + 1e-12:
                    chosen = key
                    break
                heapq.heappush(heap, (current, finish, key))
            if chosen is None:
                # Heap drained of live entries; fall back to any survivor.
                chosen = min(remaining)
            epsilon = weights[chosen]
            stack.append(chosen)
            affected = [chosen] + [n for n in graph.neighbors(chosen)
                                   if n in remaining]
            for key in affected:
                weights[key] -= epsilon
                if weights[key] <= 1e-12:
                    remaining.discard(key)
        return stack
