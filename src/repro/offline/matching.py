"""Probe assignment via incremental bipartite matching.

The offline approximation must decide whether a *set* of t-intervals is
jointly schedulable under the budget, and if so, produce the actual probe
schedule. We model this as bipartite matching:

* left nodes — execution intervals, with *identical* EIs (same resource,
  same window) merged, since one probe inside the shared window serves all
  of them;
* right nodes — ``(chronon, slot)`` pairs, one slot per unit of budget.

A t-interval set is schedulable (conservatively — see note) iff every EI
can be matched to a slot inside its window. We use Kuhn's augmenting-path
algorithm because it supports *incremental* insertion with rollback, which
is exactly what the Local-Ratio unwind phase needs.

Note on conservatism: two *different* (non-identical) EIs of the same
resource with overlapping windows could share one probe, but the matcher
assigns them distinct slots. The resulting schedule is still feasible, and
final gained completeness is always evaluated against the produced
schedule, so shared captures are credited at evaluation time.
"""

from __future__ import annotations

from repro.core.budget import BudgetVector
from repro.core.intervals import TInterval
from repro.core.schedule import Schedule
from repro.core.timeline import Chronon, Epoch

__all__ = ["ProbeAssigner"]

# Merged EI identity: (resource_id, start, finish).
EIKey = tuple[int, int, int]
# A probe slot: (chronon, slot_index).
Slot = tuple[Chronon, int]


class ProbeAssigner:
    """Incrementally assigns t-intervals' EIs to budgeted probe slots.

    Parameters
    ----------
    epoch:
        The scheduling epoch (slots exist for chronons ``1..K``).
    budget:
        Per-chronon slot capacities.
    """

    def __init__(self, epoch: Epoch, budget: BudgetVector) -> None:
        self._epoch = epoch
        self._budget = budget
        # Matching state: EI key -> slot, slot -> EI key.
        self._slot_of: dict[EIKey, Slot] = {}
        self._ei_at: dict[Slot, EIKey] = {}
        # Reference counts: how many accepted t-intervals use each EI key.
        self._refcount: dict[EIKey, int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def try_add(self, eta: TInterval) -> bool:
        """Attempt to schedule all EIs of ``eta``; all-or-nothing.

        Returns True and keeps the assignments when every EI got a slot
        (or was already assigned for another accepted t-interval); on
        failure the matching is left exactly as before the call.
        """
        new_keys: list[EIKey] = []
        for ei in eta:
            key: EIKey = (ei.resource_id, ei.start, ei.finish)
            if key in self._slot_of:
                continue  # identical EI already scheduled: free ride
            if not self._augment(key):
                for added in new_keys:
                    self._unmatch(added)
                return False
            new_keys.append(key)
        for ei in eta:
            key = (ei.resource_id, ei.start, ei.finish)
            self._refcount[key] = self._refcount.get(key, 0) + 1
        return True

    def remove(self, eta: TInterval) -> None:
        """Release a previously accepted t-interval's assignments."""
        for ei in eta:
            key: EIKey = (ei.resource_id, ei.start, ei.finish)
            count = self._refcount.get(key, 0)
            if count == 0:
                continue
            if count == 1:
                del self._refcount[key]
                self._unmatch(key)
            else:
                self._refcount[key] = count - 1

    def schedule(self) -> Schedule:
        """The probe schedule realizing the current matching."""
        schedule = Schedule()
        for (resource_id, _start, _finish), (chronon, _slot) \
                in self._slot_of.items():
            schedule.add_probe(resource_id, chronon)
        return schedule

    @property
    def assigned_count(self) -> int:
        """Number of distinct EIs currently holding a slot."""
        return len(self._slot_of)

    # ------------------------------------------------------------------
    # Kuhn's algorithm internals
    # ------------------------------------------------------------------

    def _slots_for(self, key: EIKey) -> list[Slot]:
        _resource_id, start, finish = key
        first = max(start, self._epoch.first)
        last = min(finish, self._epoch.last)
        slots: list[Slot] = []
        for chronon in range(first, last + 1):
            slots.extend((chronon, slot)
                         for slot in range(self._budget.at(chronon)))
        return slots

    def _augment(self, root: EIKey) -> bool:
        """Find an augmenting path starting from an unmatched EI key.

        Iterative DFS (augmenting chains can exceed Python's recursion
        limit on large instances). ``frames`` holds ``(key, slot_iter)``
        pairs; ``pending[i]`` is the occupied slot frame ``i`` is waiting
        on while frame ``i + 1`` tries to re-home its occupant.
        """
        visited: set[Slot] = set()
        frames: list[tuple[EIKey, object]] = [
            (root, iter(self._slots_for(root)))
        ]
        pending: list[Slot] = []
        while frames:
            key, slot_iter = frames[-1]
            pushed = False
            for slot in slot_iter:  # type: ignore[union-attr]
                if slot in visited:
                    continue
                visited.add(slot)
                occupant = self._ei_at.get(slot)
                if occupant is None:
                    # Free slot found: flip the whole augmenting chain.
                    self._ei_at[slot] = key
                    self._slot_of[key] = slot
                    for index in range(len(frames) - 2, -1, -1):
                        parent_key = frames[index][0]
                        parent_slot = pending[index]
                        self._ei_at[parent_slot] = parent_key
                        self._slot_of[parent_key] = parent_slot
                    return True
                pending.append(slot)
                frames.append((occupant, iter(self._slots_for(occupant))))
                pushed = True
                break
            if not pushed:
                frames.pop()
                if pending:
                    pending.pop()
        return False

    def _unmatch(self, key: EIKey) -> None:
        slot = self._slot_of.pop(key, None)
        if slot is not None:
            del self._ei_at[slot]
