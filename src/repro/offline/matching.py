"""Probe assignment via incremental bipartite matching.

The offline approximation must decide whether a *set* of t-intervals is
jointly schedulable under the budget, and if so, produce the actual probe
schedule. We model this as bipartite matching:

* left nodes — execution intervals, with *identical* EIs (same resource,
  same window) merged, since one probe inside the shared window serves all
  of them;
* right nodes — ``(chronon, slot)`` pairs, one slot per unit of budget.

A t-interval set is schedulable (conservatively — see note) iff every EI
can be matched to a slot inside its window. We use Kuhn's augmenting-path
algorithm because it supports *incremental* insertion with rollback, which
is exactly what the Local-Ratio unwind phase needs. A failed ``try_add``
restores the matching *exactly* — including any assignments an
intermediate augmenting path rearranged — via an undo log, so callers can
probe feasibility freely.

Two accelerations are layered on top in ``fast`` mode (the default); both
are outcome-invariant, so fast and non-fast assigners accept the same
t-intervals and produce the same schedules (whether a t-interval can join
the matching depends only on the accepted set — a transversal-matroid
property — and the augmentation order is shared):

* a **Hall-style pigeonhole precheck** per t-interval: over the chronon
  span of its unassigned EIs, the EIs already *confined* to that span
  (window fully inside — they can never be rehomed out) plus the new EIs
  must fit the span's total budget. Maintained with two Fenwick trees
  (assigned-EI counts by start and by finish chronon), the check costs
  ``O(log K)`` and rejects most doomed insertions without touching the
  matching — failed augmentations are the dominant cost of the unwind;
* a **unit shortcut**: while every assigned EI is unit-width and the
  incoming t-interval is too, slots at different chronons are independent,
  so per-chronon occupancy counters decide feasibility exactly and
  assignment is direct — no augmentation at all (the ``P^[1]`` regime the
  paper evaluates offline runs in).

Fast mode additionally memoizes candidate slot lists per EI key and
encodes slots as single integers (``chronon * stride + index``), which
keeps hashing cheap on the augmentation hot path; non-fast mode rebuilds
slot lists on every visit, mirroring the naive implementation the fast
mode is benchmarked against. The encoding preserves the ``(chronon,
index)`` visit order, so augmentation chains are identical either way.

Note on conservatism: two *different* (non-identical) EIs of the same
resource with overlapping windows could share one probe, but the matcher
assigns them distinct slots. The resulting schedule is still feasible, and
final gained completeness is always evaluated against the produced
schedule, so shared captures are credited at evaluation time.
"""

from __future__ import annotations

from repro.core.budget import BudgetVector
from repro.core.intervals import TInterval
from repro.core.schedule import Schedule
from repro.core.timeline import Chronon, Epoch

__all__ = ["ProbeAssigner"]

# Merged EI identity: (resource_id, start, finish).
EIKey = tuple[int, int, int]
# A probe slot, encoded as ``chronon * stride + slot_index``.
Slot = int


class _Fenwick:
    """Minimal Fenwick (binary-indexed) tree over chronons ``1..size``."""

    __slots__ = ("_size", "_tree")

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        while index <= self._size:
            self._tree[index] += delta
            index += index & -index

    def prefix(self, index: int) -> int:
        """Sum of counts over ``1..index`` (0 for ``index <= 0``)."""
        if index > self._size:
            index = self._size
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total


class ProbeAssigner:
    """Incrementally assigns t-intervals' EIs to budgeted probe slots.

    Parameters
    ----------
    epoch:
        The scheduling epoch (slots exist for chronons ``1..K``).
    budget:
        Per-chronon slot capacities.
    fast:
        Enable the outcome-invariant accelerations (Hall precheck, unit
        shortcut, slot-list memoization). ``False`` forces every insertion
        through plain Kuhn augmentation with freshly-built slot lists —
        the executable specification the fast mode is verified against.
    """

    def __init__(self, epoch: Epoch, budget: BudgetVector,
                 fast: bool = True) -> None:
        self._epoch = epoch
        self._budget = budget
        self._fast = fast
        # Slot encoding stride: one more than the largest per-chronon
        # budget, so (chronon, index) order matches numeric order.
        self._stride = budget.max_over(epoch) + 1
        # Matching state: EI key -> slot, slot -> EI key.
        self._slot_of: dict[EIKey, Slot] = {}
        self._ei_at: dict[Slot, EIKey] = {}
        # Reference counts: how many accepted t-intervals use each EI key.
        self._refcount: dict[EIKey, int] = {}
        # Memoized slot lists per EI key (shared lists, never mutated).
        self._slots_cache: dict[EIKey, list[Slot]] = {}
        # Acceleration state (cheap to maintain unconditionally, so both
        # modes share one code path for mutations):
        self._used_at: dict[Chronon, int] = {}  # chronon -> assigned slots
        self._starts = _Fenwick(epoch.last)     # assigned keys by start'
        self._finishes = _Fenwick(epoch.last)   # assigned keys by finish'
        self._all_unit = True  # no non-unit EI key assigned so far

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def try_add(self, eta: TInterval) -> bool:
        """Attempt to schedule all EIs of ``eta``; all-or-nothing.

        Returns True and keeps the assignments when every EI got a slot
        (or was already assigned for another accepted t-interval); on
        failure the matching is left exactly as before the call.
        """
        new_keys: list[EIKey] = []
        seen: set[EIKey] = set()
        for ei in eta:
            key: EIKey = (ei.resource_id, ei.start, ei.finish)
            if key in self._slot_of or key in seen:
                continue  # identical EI already scheduled: free ride
            seen.add(key)
            new_keys.append(key)

        if new_keys and self._fast:
            # The unit shortcut is exact on its own, so the Hall precheck
            # would be pure overhead there; run it only when the insert
            # will go through Kuhn augmentation.
            if (self._all_unit
                    and all(key[1] == key[2] for key in new_keys)):
                if not self._match_unit(new_keys):
                    return False
                for ei in eta:
                    key = (ei.resource_id, ei.start, ei.finish)
                    self._refcount[key] = self._refcount.get(key, 0) + 1
                return True
            if not self._admissible(new_keys):
                return False

        if not self._match_new_keys(new_keys):
            return False
        for ei in eta:
            key = (ei.resource_id, ei.start, ei.finish)
            self._refcount[key] = self._refcount.get(key, 0) + 1
        return True

    def remove(self, eta: TInterval) -> None:
        """Release a previously accepted t-interval's assignments."""
        for ei in eta:
            key: EIKey = (ei.resource_id, ei.start, ei.finish)
            count = self._refcount.get(key, 0)
            if count == 0:
                continue
            if count == 1:
                del self._refcount[key]
                self._unassign(key)
            else:
                self._refcount[key] = count - 1

    def schedule(self) -> Schedule:
        """The probe schedule realizing the current matching."""
        schedule = Schedule()
        stride = self._stride
        for (resource_id, _start, _finish), slot in self._slot_of.items():
            schedule.add_probe(resource_id, slot // stride)
        return schedule

    @property
    def assigned_count(self) -> int:
        """Number of distinct EIs currently holding a slot."""
        return len(self._slot_of)

    # ------------------------------------------------------------------
    # Insertion machinery
    # ------------------------------------------------------------------

    def _clip(self, key: EIKey) -> tuple[int, int]:
        """The key's window clipped to the epoch (empty when inverted)."""
        _resource_id, start, finish = key
        return (max(start, self._epoch.first),
                min(finish, self._epoch.last))

    def _admissible(self, new_keys: list[EIKey]) -> bool:
        """Hall-style pigeonhole precheck; False only on certain failure.

        Over the chronon span ``[a, b]`` of the new keys, every assigned
        key *confined* to the span (window inside ``[a, b]`` — it cannot
        be rehomed outside) occupies a slot the new keys compete for.
        ``count(finish <= b) - count(start < a)`` lower-bounds the
        confined count, so rejecting when new + confined exceed the
        span's budget never rejects a schedulable insertion.
        """
        span_first = self._epoch.last + 1
        span_last = 0
        for key in new_keys:
            first, last = self._clip(key)
            if first > last:
                return False  # window entirely outside the epoch
            span_first = min(span_first, first)
            span_last = max(span_last, last)
        confined = (self._finishes.prefix(span_last)
                    - self._starts.prefix(span_first - 1))
        capacity = self._budget.total_between(span_first, span_last)
        return len(new_keys) + confined <= capacity

    def _match_new_keys(self, new_keys: list[EIKey]) -> bool:
        """Assign every new key, or restore the matching and fail."""
        undo: list[tuple[EIKey, Slot | None]] = []
        for key in new_keys:
            if not self._augment(key, undo):
                stride = self._stride
                for undo_key, previous in reversed(undo):
                    current = self._slot_of[undo_key]
                    del self._ei_at[current]
                    self._used_at[current // stride] -= 1
                    if previous is None:
                        del self._slot_of[undo_key]
                        self._account_key(undo_key, removed=True)
                    else:
                        self._slot_of[undo_key] = previous
                        self._ei_at[previous] = undo_key
                        chronon = previous // stride
                        self._used_at[chronon] = \
                            self._used_at.get(chronon, 0) + 1
                return False
        return True

    def _match_unit(self, new_keys: list[EIKey]) -> bool:
        """Exact direct assignment while the whole matching is unit-width.

        Unit EIs can only ever occupy their own chronon's slots, so slots
        at different chronons are independent and per-chronon occupancy
        decides feasibility — equivalent to Kuhn on a graph where no
        augmenting path ever leaves a chronon.
        """
        first, last = self._epoch.first, self._epoch.last
        demanded: dict[Chronon, int] = {}
        for key in new_keys:
            chronon = key[1]
            if chronon < first or chronon > last:
                return False  # no slots exist outside the epoch
            demanded[chronon] = demanded.get(chronon, 0) + 1
        for chronon, count in demanded.items():
            if (self._used_at.get(chronon, 0) + count
                    > self._budget.at(chronon)):
                return False
        stride = self._stride
        for key in new_keys:
            base = key[1] * stride
            for index in range(self._budget.at(key[1])):
                if base + index not in self._ei_at:
                    self._assign(key, base + index)
                    break
        return True

    def _assign(self, key: EIKey, slot: Slot) -> None:
        """Bind a currently-unassigned key to a free slot."""
        self._slot_of[key] = slot
        self._ei_at[slot] = key
        chronon = slot // self._stride
        self._used_at[chronon] = self._used_at.get(chronon, 0) + 1
        self._account_key(key, removed=False)

    def _unassign(self, key: EIKey) -> None:
        slot = self._slot_of.pop(key, None)
        if slot is not None:
            del self._ei_at[slot]
            self._used_at[slot // self._stride] -= 1
            self._account_key(key, removed=True)

    def _account_key(self, key: EIKey, removed: bool) -> None:
        """Track an assigned key in the precheck trees."""
        first, last = self._clip(key)
        delta = -1 if removed else 1
        self._starts.add(first, delta)
        self._finishes.add(last, delta)
        if not removed and first != last:
            self._all_unit = False

    # ------------------------------------------------------------------
    # Kuhn's algorithm internals
    # ------------------------------------------------------------------

    def _slots_for(self, key: EIKey) -> list[Slot]:
        if not self._fast:
            # Reference mode mirrors the naive implementation: rebuild
            # the candidate slot list on every augmentation visit.
            first, last = self._clip(key)
            stride = self._stride
            return [chronon * stride + index
                    for chronon in range(first, last + 1)
                    for index in range(self._budget.at(chronon))]
        cached = self._slots_cache.get(key)
        if cached is None:
            first, last = self._clip(key)
            stride = self._stride
            cached = [chronon * stride + index
                      for chronon in range(first, last + 1)
                      for index in range(self._budget.at(chronon))]
            self._slots_cache[key] = cached
        return cached

    def _augment(self, root: EIKey,
                 undo: list[tuple[EIKey, Slot | None]]) -> bool:
        """Find an augmenting path starting from an unmatched EI key.

        Iterative DFS (augmenting chains can exceed Python's recursion
        limit on large instances). ``frames`` holds ``(key, slot_iter)``
        pairs; ``pending[i]`` is the occupied slot frame ``i`` is waiting
        on while frame ``i + 1`` tries to re-home its occupant.

        Every assignment the winning chain flips is appended to ``undo``
        as ``(key, previous_slot)`` so a failed multi-EI insertion can be
        reverted exactly. A failed augmentation itself mutates nothing.
        """
        ei_at = self._ei_at
        visited: set[Slot] = set()
        frames: list[tuple[EIKey, object]] = [
            (root, iter(self._slots_for(root)))
        ]
        pending: list[Slot] = []
        while frames:
            key, slot_iter = frames[-1]
            pushed = False
            for slot in slot_iter:  # type: ignore[union-attr]
                if slot in visited:
                    continue
                visited.add(slot)
                occupant = ei_at.get(slot)
                if occupant is None:
                    # Free slot found: flip the whole augmenting chain.
                    undo.append((key, self._slot_of.get(key)))
                    ei_at[slot] = key
                    self._slot_of[key] = slot
                    chronon = slot // self._stride
                    self._used_at[chronon] = \
                        self._used_at.get(chronon, 0) + 1
                    for index in range(len(frames) - 2, -1, -1):
                        parent_key = frames[index][0]
                        parent_slot = pending[index]
                        undo.append((parent_key,
                                     self._slot_of.get(parent_key)))
                        ei_at[parent_slot] = parent_key
                        self._slot_of[parent_key] = parent_slot
                    self._account_key(root, removed=False)
                    return True
                pending.append(slot)
                frames.append((occupant, iter(self._slots_for(occupant))))
                pushed = True
                break
            if not pushed:
                frames.pop()
                if pending:
                    pending.pop()
        return False
