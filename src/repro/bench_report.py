"""Benchmark regression report: ``repro-experiments bench-report``.

Loads every ``BENCH_*.json`` report, extracts all tracked ``speedup``
figures (any numeric value stored under a ``"speedup"`` key, at any
nesting depth), prints them as one table, and compares each against the
committed baseline (the same file at git ``HEAD``). The command exits
non-zero when any speedup regressed by more than the tolerance — CI runs
it after regenerating the smoke-scale reports, turning silent perf
regressions into red builds.

Also runnable directly: ``python -m repro.bench_report [--dir .]
[--baseline-dir DIR] [--tolerance 0.2]``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

__all__ = ["collect_speedups", "load_baseline", "main"]


def collect_speedups(report: object, prefix: str = "") -> dict[str, float]:
    """All numeric ``speedup`` entries of a report, keyed by dotted path."""
    found: dict[str, float] = {}
    if isinstance(report, dict):
        for key, value in report.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if key == "speedup" and isinstance(value, (int, float)):
                found[path] = float(value)
            else:
                found.update(collect_speedups(value, path))
    elif isinstance(report, list):
        for at, value in enumerate(report):
            found.update(collect_speedups(value, f"{prefix}[{at}]"))
    return found


def load_baseline(name: str, directory: Path,
                  baseline_dir: Path | None) -> dict | None:
    """The committed baseline report for ``name``, or ``None`` if absent.

    With ``baseline_dir`` the baseline is read from that directory
    (used by tests); otherwise it is the file's content at git ``HEAD``.
    """
    if baseline_dir is not None:
        path = baseline_dir / name
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
    try:
        out = subprocess.run(
            ["git", "show", f"HEAD:{name}"], cwd=directory,
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    try:
        return json.loads(out.stdout)
    except json.JSONDecodeError:
        return None


def main(argv: list[str] | None = None) -> int:
    """Print the speedup table; exit 1 on any gated regression."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments bench-report",
        description="Summarize BENCH_*.json speedups and gate on "
                    "regressions vs the committed baselines.")
    parser.add_argument(
        "--dir", default=".", metavar="DIR",
        help="directory holding the BENCH_*.json reports (default: .)")
    parser.add_argument(
        "--baseline-dir", default=None, metavar="DIR",
        help="read baselines from DIR instead of git HEAD")
    parser.add_argument(
        "--tolerance", type=float, default=0.2, metavar="FRACTION",
        help="allowed fractional regression before failing "
             "(default: 0.2 = 20%%)")
    args = parser.parse_args(argv)

    directory = Path(args.dir)
    baseline_dir = Path(args.baseline_dir) if args.baseline_dir else None
    reports = sorted(directory.glob("BENCH_*.json"))
    if not reports:
        print(f"no BENCH_*.json reports under {directory.resolve()}")
        return 0

    rows: list[tuple[str, str, str, float, str]] = []
    regressions: list[str] = []
    for path in reports:
        try:
            current = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: unreadable report {path.name}: {error}",
                  file=sys.stderr)
            continue
        base = load_baseline(path.name, directory, baseline_dir)
        now = collect_speedups(current)
        then = collect_speedups(base) if base is not None else {}
        for key in sorted(now):
            value = now[key]
            reference = then.get(key)
            if reference is None:
                rows.append((path.name, key, "-", value, "new"))
                continue
            floor = reference * (1.0 - args.tolerance)
            status = "ok" if value >= floor else "REGRESSED"
            rows.append((path.name, key, f"{reference:.2f}", value, status))
            if value < floor:
                regressions.append(
                    f"{path.name}:{key} {reference:.2f}x -> {value:.2f}x "
                    f"(floor {floor:.2f}x)")

    name_w = max([len(r[0]) for r in rows] + [6])
    key_w = max([len(r[1]) for r in rows] + [4])
    print(f"{'report':<{name_w}}  {'path':<{key_w}}  "
          f"{'baseline':>8}  {'current':>8}  status")
    for name, key, reference, value, status in rows:
        print(f"{name:<{name_w}}  {key:<{key_w}}  "
              f"{reference:>8}  {value:>8.2f}  {status}")

    if regressions:
        print(f"\n{len(regressions)} speedup(s) regressed more than "
              f"{args.tolerance:.0%}:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"\nall tracked speedups within {args.tolerance:.0%} "
          "of their baselines")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
