"""repro — pull-based online monitoring of volatile data sources.

A faithful, self-contained reproduction of:

    Haggai Roitman, Avigdor Gal, Louiqa Raschid.
    "Satisfying Complex Data Needs using Pull-Based Online Monitoring of
    Volatile Data Sources." ICDE 2008.

Public API highlights
---------------------
Model:      :class:`Epoch`, :class:`ExecutionInterval`, :class:`TInterval`,
            :class:`Profile`, :class:`ProfileSet`, :class:`BudgetVector`,
            :class:`Schedule`, :func:`gained_completeness`.
Policies:   :class:`SEDFPolicy`, :class:`MRSFPolicy`, :class:`MEDFPolicy`
            (and baselines), run through :func:`run_online`.
Offline:    :class:`EnumerationSolver`, :class:`MILPSolver`,
            :class:`LocalRatioApproximation`.
Workloads:  :class:`ProfileGenerator`, :class:`AuctionWatchTemplate`,
            :class:`OverwriteRestriction`, :class:`WindowRestriction`.
Traces:     :class:`UpdateTrace`, :class:`PoissonUpdateModel`,
            :class:`FPNUpdateModel`, :class:`AuctionTraceSynthesizer`,
            :class:`FeedTraceSynthesizer`, :class:`StockMarketSynthesizer`.
"""

from repro.analysis import (
    InstanceStats,
    PolicyComparison,
    compare_policies,
    compute_stats,
)
from repro.dsl import compile_text, parse
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    FaultTrace,
    Outage,
    ProbeOutcome,
    RetryConfig,
    UnreliableServer,
)
from repro.forecast import (
    AdaptiveEstimator,
    ForecastUpdateModel,
    PeriodicityEstimator,
    PoissonRateEstimator,
    evaluate_knowledge_gap,
)
from repro.runtime import (
    Client,
    MonitoringProxy,
    Notification,
    OriginServer,
    Snapshot,
)
from repro.core import (
    BudgetVector,
    Chronon,
    CompletenessReport,
    Epoch,
    ExecutionInterval,
    ModelError,
    Probe,
    Profile,
    ProfileSet,
    ReproError,
    Resource,
    ResourceCatalog,
    Schedule,
    ScheduleInfeasibleError,
    SolverCapacityError,
    SolverError,
    TInterval,
    TraceFormatError,
    WorkloadError,
    evaluate_schedule,
    gained_completeness,
)
from repro.offline import (
    EnumerationSolver,
    LocalRatioApproximation,
    MILPSolver,
    expand_to_unit_width,
)
from repro.online import (
    MEDFPolicy,
    MRSFPolicy,
    Policy,
    SEDFPolicy,
    make_policy,
    parse_policy_spec,
)
from repro.simulation import ProxySimulator, SimulationResult, run_online
from repro.traces import (
    AuctionTraceSynthesizer,
    FeedTraceSynthesizer,
    FPNUpdateModel,
    PeriodicUpdateModel,
    PoissonUpdateModel,
    StockMarketSynthesizer,
    UpdateEvent,
    UpdateTrace,
)
from repro.workloads import (
    AuctionWatchTemplate,
    BoundedZipf,
    GeneratorConfig,
    OverwriteRestriction,
    ProfileGenerator,
    SingleResourceTemplate,
    WindowRestriction,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveEstimator",
    "CircuitBreaker",
    "Client",
    "FaultInjector",
    "FaultSpec",
    "FaultTrace",
    "Outage",
    "ProbeOutcome",
    "RetryConfig",
    "UnreliableServer",
    "ForecastUpdateModel",
    "MonitoringProxy",
    "Notification",
    "OriginServer",
    "PeriodicityEstimator",
    "PoissonRateEstimator",
    "Snapshot",
    "compile_text",
    "evaluate_knowledge_gap",
    "parse",
    "AuctionTraceSynthesizer",
    "AuctionWatchTemplate",
    "BoundedZipf",
    "BudgetVector",
    "Chronon",
    "CompletenessReport",
    "EnumerationSolver",
    "Epoch",
    "ExecutionInterval",
    "FPNUpdateModel",
    "FeedTraceSynthesizer",
    "GeneratorConfig",
    "InstanceStats",
    "PolicyComparison",
    "compare_policies",
    "compute_stats",
    "LocalRatioApproximation",
    "MEDFPolicy",
    "MILPSolver",
    "MRSFPolicy",
    "ModelError",
    "OverwriteRestriction",
    "PeriodicUpdateModel",
    "PoissonUpdateModel",
    "Policy",
    "Probe",
    "Profile",
    "ProfileGenerator",
    "ProfileSet",
    "ProxySimulator",
    "ReproError",
    "Resource",
    "ResourceCatalog",
    "SEDFPolicy",
    "Schedule",
    "ScheduleInfeasibleError",
    "SimulationResult",
    "SingleResourceTemplate",
    "SolverCapacityError",
    "SolverError",
    "StockMarketSynthesizer",
    "TInterval",
    "TraceFormatError",
    "UpdateEvent",
    "UpdateTrace",
    "WindowRestriction",
    "WorkloadError",
    "evaluate_schedule",
    "expand_to_unit_width",
    "gained_completeness",
    "make_policy",
    "parse_policy_spec",
    "run_online",
    "__version__",
]
