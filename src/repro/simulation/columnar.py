"""Structure-of-arrays instance form for the batch simulation engine.

:class:`ColumnarInstance` lowers a :class:`~repro.core.profile.ProfileSet`
into flat NumPy columns plus CSR-style index structures, so that
:mod:`repro.simulation.batch` can advance a whole policy lineup with
array operations instead of per-object dispatch. The layout encodes the
fast engine's tie-break order *positionally*:

* **States** (t-intervals) are sorted by (clamped arrival chronon,
  creation order) — exactly the reference's active-list order — so the
  state's array index IS the fast engine's ``seq``.
* **EIs** are laid out state-major, within a state in ``ei_id`` order, so
  the global EI index orders identically to the ``(seq, ei_id)``
  tie-break the engines resolve full score ties with.
* **Per-chronon activity** is a CSR over chronons: for every chronon with
  at least one live window, the indices of the EIs whose
  ``[start, min(finish, K)]`` window contains it, sorted by
  (resource, EI index). Consecutive runs of one resource form the
  *groups* — the per-resource candidate pools — described by a second
  CSR (``grp_*``), so per-resource aggregation is a ``reduceat``.
* **Events** are two more CSRs: EIs bucketed by window opening (``se_*``,
  drives the M-EDF started-count aggregate) and by expiry — the chronon
  after their deadline (``xe_*``, drives doom tracking).

Selection keys are packed into single int64 words so that lexicographic
candidate comparison becomes integer comparison. A candidate's key is
``(score, finish, start)`` packed high-to-low; the per-resource rank key
inserts the pool size (inverted, since bigger pools rank earlier) between
``finish`` and ``start`` and appends the resource id:
``(score, finish, n_max - n, start, rid)``. All supported policy scores
are integers (after a per-policy-kind additive offset making them
non-negative), so the packing is exact. Bit widths are computed from the
instance's actual bounds; if a key cannot fit into 62 bits the
constructor raises :class:`BatchUnsupported` and callers fall back to the
event-indexed fast engine.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from repro.core.profile import ProfileSet
from repro.core.timeline import Epoch

__all__ = ["BatchUnsupported", "ColumnarInstance", "INF_KEY"]

#: Sentinel ranking key for "no candidate" — larger than any packed key.
INF_KEY = np.iinfo(np.int64).max

#: Maximum bits a packed key may use (int64, sign bit spared, and one
#: headroom bit so arithmetic on valid keys can never wrap).
_MAX_KEY_BITS = 62


class BatchUnsupported(Exception):
    """The instance (or lineup) cannot run on the batch engine.

    Raised when packed selection keys would overflow 62 bits (gigantic
    scores, horizons or resource ids). Callers catch it and fall back to
    the fast engine, which has no such bound.
    """


def _bits(max_value: int) -> int:
    """Bits needed to store integers in ``[0, max_value]``."""
    return max(1, int(max_value).bit_length())


class ColumnarInstance:
    """Flat-array form of one or more (profiles, epoch) instances.

    Build once with :meth:`build` (single instance) or :meth:`build_many`
    (a *mega block*: several instances — typically the repetitions of a
    sweep cell — concatenated into one column space). The result is
    immutable and shared by every lane of every block run on it (all
    per-run state lives in the engine, not here).

    Multi-instance concatenation keeps instances disjoint by
    construction: resource ids are offset per instance
    (``rid' = rid + instance * rid_stride``) so per-resource groups never
    mix instances, and states keep their within-instance (arrival,
    creation) order under the global stable arrival sort, so the global
    state/EI indices order each instance's tie-breaks exactly as its
    standalone layout would. The engine confines a lane to its instance
    by pre-marking every foreign EI as already captured — cross-instance
    isolation costs nothing per chronon.
    """

    def __init__(self, profile_sets: Sequence[ProfileSet],
                 epoch: Epoch) -> None:
        self.profile_sets = list(profile_sets)
        self.n_inst = len(self.profile_sets)
        self.epoch = epoch
        last = epoch.last

        # ------------------------------------------------------------------
        # States in (clamped arrival, creation order) — the seq order.
        # ------------------------------------------------------------------
        st_arrival: list[int] = []
        st_rank: list[int] = []
        st_profile: list[int] = []
        st_size: list[int] = []
        st_inst: list[int] = []
        st_tid: list[int] = []
        etas = []
        rid_max = 0
        for inst, profiles in enumerate(self.profile_sets):
            for profile in profiles:
                rank = profile.rank
                for eta in profile:
                    st_arrival.append(min(eta.earliest_start, last))
                    st_rank.append(rank)
                    st_profile.append(eta.profile_id)
                    st_size.append(len(eta))
                    st_inst.append(inst)
                    st_tid.append(eta.tinterval_id)
                    etas.append(eta)
                    for ei in eta:
                        if ei.resource_id > rid_max:
                            rid_max = ei.resource_id
        #: Resource-id namespace width per instance.
        self.rid_stride = rid_max + 1
        order = sorted(range(len(etas)), key=lambda i: st_arrival[i])
        self.S = len(etas)
        self.st_arrival = np.array([st_arrival[i] for i in order],
                                   dtype=np.int64)
        self.st_rank = np.array([st_rank[i] for i in order], dtype=np.int64)
        self.st_profile = np.array([st_profile[i] for i in order],
                                   dtype=np.int64)
        self.st_size = np.array([st_size[i] for i in order], dtype=np.int64)
        self.st_inst = np.array([st_inst[i] for i in order], dtype=np.int64)
        self.st_tid = np.array([st_tid[i] for i in order], dtype=np.int64)

        # ------------------------------------------------------------------
        # EIs state-major, within a state in ei_id order.
        # ------------------------------------------------------------------
        ei_res: list[int] = []
        ei_start: list[int] = []
        ei_finish: list[int] = []
        ei_state: list[int] = []
        for seq, i in enumerate(order):
            off = st_inst[i] * self.rid_stride
            for ei in etas[i]:
                ei_res.append(ei.resource_id + off)
                ei_start.append(ei.start)
                ei_finish.append(ei.finish)
                ei_state.append(seq)
        self.E = len(ei_res)
        self.ei_res = np.array(ei_res, dtype=np.int64)
        self.ei_start = np.array(ei_start, dtype=np.int64)
        self.ei_finish = np.array(ei_finish, dtype=np.int64)
        self.ei_state = np.array(ei_state, dtype=np.int64)
        self.ei_inst = self.st_inst[self.ei_state]
        # M-EDF's initial deadline sum counts every EI, active or not.
        self.init_sum = np.zeros(self.S, dtype=np.int64)
        np.add.at(self.init_sum, self.ei_state, self.ei_finish)

        self._build_activity(last)
        self._build_events(last)
        self._build_keys(last)
        # Lazily-built fault-plane columns (see fault_draw_column /
        # outage_column): pure caches keyed on spec parameters, safe to
        # share across every block run on this lowering.
        self._fault_cols: dict[tuple, np.ndarray] = {}
        self._fault_layout: tuple[np.ndarray, ...] | None = None
        self._commit_tie: np.ndarray | None = None

    @classmethod
    def build(cls, profiles: ProfileSet, epoch: Epoch) -> "ColumnarInstance":
        """Columnar form of one instance (raises :class:`BatchUnsupported`)."""
        return cls([profiles], epoch)

    @classmethod
    def build_many(cls, profile_sets: Sequence[ProfileSet],
                   epoch: Epoch) -> "ColumnarInstance":
        """Columnar form of several same-epoch instances (a mega block)."""
        return cls(profile_sets, epoch)

    # ------------------------------------------------------------------
    # Per-chronon activity CSR + per-resource groups
    # ------------------------------------------------------------------

    def _build_activity(self, last: int) -> None:
        # An EI is probeable over [start, min(finish, last)]; EIs opening
        # past the epoch never become candidates (their start event never
        # fires in the fast engine).
        fin_cl = np.minimum(self.ei_finish, last)
        width = np.where(self.ei_start <= last,
                         fin_cl - self.ei_start + 1, 0)
        total = int(width.sum())
        act_e = np.repeat(np.arange(self.E, dtype=np.int64), width)
        cum = np.concatenate(([0], np.cumsum(width)))
        offset = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], width)
        act_T = np.repeat(self.ei_start, width) + offset
        act_res = self.ei_res[act_e]
        # Chronon-major, then resource, then EI index (the tie-break).
        order = np.lexsort((act_e, act_res, act_T))
        self.act_e = act_e[order]
        act_T = act_T[order]
        act_res = act_res[order]
        self.ps_act = self.ei_state[self.act_e]

        new_t = np.empty(total, dtype=bool)
        new_g = np.empty(total, dtype=bool)
        if total:
            new_t[0] = True
            new_t[1:] = act_T[1:] != act_T[:-1]
            new_g[0] = True
            new_g[1:] = new_t[1:] | (act_res[1:] != act_res[:-1])
        t_starts = np.nonzero(new_t)[0]
        self.act_chronons = act_T[t_starts]
        self.act_indptr = np.concatenate((t_starts, [total])).astype(np.int64)
        self.grp_starts = np.nonzero(new_g)[0].astype(np.int64)
        self.grp_rid = act_res[self.grp_starts]
        self.grp_indptr = np.searchsorted(
            self.grp_starts, self.act_indptr).astype(np.int64)
        # Local (within-chronon) group index of each activity entry.
        if total:
            g_global = np.cumsum(new_g) - 1
            spans = np.diff(self.act_indptr)
            self.grp_of = (g_global
                           - np.repeat(self.grp_indptr[:-1], spans)
                           ).astype(np.int64)
            grp_sizes = np.diff(np.concatenate((self.grp_starts, [total])))
            self.n_max = int(grp_sizes.max())
        else:
            self.grp_of = np.zeros(0, dtype=np.int64)
            self.n_max = 1

        # started_act[j]: how many EIs of entry j's state have opened
        # (start <= chronon) by entry j's chronon — M-EDF's "started"
        # aggregate before subtracting a lane's captures. Lane-independent
        # and static per entry (a state's arrival is the min of its EI
        # starts clamped to the epoch, so every windowed EI opens exactly
        # at its own start). The EI layout is state-major, so a fused
        # (state, start) key turns the per-state prefix count into one
        # searchsorted over the whole instance.
        if self.E:
            stride = int(max(self.ei_start.max(), act_T.max() if total
                             else 0)) + 2
            fused = np.sort(self.ei_state * stride + self.ei_start)
            state_ei_ptr = np.searchsorted(
                self.ei_state, np.arange(self.S, dtype=np.int64))
            self.started_act = (
                np.searchsorted(fused, self.ps_act * stride + act_T,
                                side="right")
                - state_ei_ptr[self.ps_act]).astype(np.int64)
        else:
            self.started_act = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Event CSRs (window openings and expiries)
    # ------------------------------------------------------------------

    def _build_events(self, last: int) -> None:
        # Expiry events: the chronon after the deadline, for deadlines
        # inside the epoch.
        xe = np.nonzero(self.ei_finish < last)[0]
        xe_T = self.ei_finish[xe] + 1
        order = np.argsort(xe_T, kind="stable")
        xe = xe[order]
        xe_T = xe_T[order]
        bounds = np.nonzero(np.concatenate(
            ([True], xe_T[1:] != xe_T[:-1])))[0] if xe.size else \
            np.zeros(0, dtype=np.int64)
        self.xe_chronons = xe_T[bounds]
        self.xe_indptr = np.concatenate((bounds, [xe.size])).astype(np.int64)
        self.xe_e = xe

        # Within each expiry flush the entries are state-major (stable
        # sort of an EI-index-ordered list), so per-state segments are
        # contiguous: precompute their starts so the engine can OR-reduce
        # doom updates to unique states (duplicate targets would make a
        # buffered fancy |= lossy).
        xe_state = self.ei_state[xe]
        n = xe.size
        if n:
            seg = np.concatenate(
                ([True], (xe_T[1:] != xe_T[:-1])
                 | (xe_state[1:] != xe_state[:-1])))
            self.xg_starts = np.nonzero(seg)[0].astype(np.int64)
        else:
            self.xg_starts = np.zeros(0, dtype=np.int64)
        self.xg_state = xe_state[self.xg_starts] if n else \
            np.zeros(0, dtype=np.int64)
        self.xg_indptr = np.searchsorted(
            self.xg_starts, self.xe_indptr).astype(np.int64)


    # ------------------------------------------------------------------
    # Packed-key layout + static key columns
    # ------------------------------------------------------------------

    def _build_keys(self, last: int) -> None:
        K = last
        start_max = int(self.ei_start.max()) if self.E else 1
        finish_max = int(self.ei_finish.max()) if self.E else 1
        rank_max = int(self.st_rank.max()) if self.S else 1
        size_max = int(self.st_size.max()) if self.S else 1
        rid_max = int(self.ei_res.max()) if self.E else 0
        # Largest offset score any supported policy kind can produce:
        # S-EDF/FCFS/LFF are bounded by the horizon, the rank family by
        # the profile rank, Coverage by the largest pool, and M-EDF by
        # sum(finish) - T * started in [-K * size, K * size].
        self.medf_off = K * size_max
        score_max = max(finish_max + 1, start_max, rank_max,
                        self.n_max, 2 * self.medf_off)

        self.start_bits = _bits(start_max)
        self.finish_bits = _bits(finish_max)
        self.score_bits = _bits(score_max)
        self.n_bits = _bits(self.n_max)
        self.rid_bits = _bits(rid_max)
        self.fs_bits = self.finish_bits + self.start_bits
        cand_bits = self.score_bits + self.fs_bits
        res_bits = cand_bits + self.n_bits + self.rid_bits
        if res_bits > _MAX_KEY_BITS:
            raise BatchUnsupported(
                f"packed selection key needs {res_bits} bits (> "
                f"{_MAX_KEY_BITS}): horizon {K}, scores <= {score_max}, "
                f"pools <= {self.n_max}, resources <= {rid_max}")
        self.start_mask = (1 << self.start_bits) - 1

        # Static per-activity-entry columns, aligned with act_e.
        fin = self.ei_finish[self.act_e]
        start = self.ei_start[self.act_e]
        self.finstart_act = (fin << self.start_bits) | start
        rank = self.st_rank[self.ps_act]
        self.hi_static = {
            "sedf": (fin << self.fs_bits) | self.finstart_act,
            "fcfs": (start << self.fs_bits) | self.finstart_act,
            "lff": ((fin + 1) << self.fs_bits) | self.finstart_act,
            "srank": (rank << self.fs_bits) | self.finstart_act,
            # anti-MRSF's offset form: (rank_max - (rank - captured)).
            "anti": ((rank_max - rank) << self.fs_bits) | self.finstart_act,
        }
        self.rank_max = rank_max
        self.init_sum_act = self.init_sum[self.ps_act]
        self.fin_act = fin

        # Report scaffolding shared by every lane of an instance: totals
        # never depend on the run, only on the instance.
        self.profile_totals = [
            {profile.profile_id: len(profile) for profile in profiles}
            for profiles in self.profile_sets]
        self.rank_totals: list[dict[int, int]] = [
            {} for _ in range(self.n_inst)]
        self.inst_sizes = [0] * self.n_inst
        for size, inst in zip(self.st_size.tolist(), self.st_inst.tolist()):
            totals = self.rank_totals[inst]
            totals[size] = totals.get(size, 0) + 1
            self.inst_sizes[inst] += 1

    # ------------------------------------------------------------------

    def resource_key(self, best: np.ndarray, pool_n: np.ndarray,
                     grp_rid: np.ndarray) -> np.ndarray:
        """Pack per-group rank keys ``(score, finish, -n, start, rid)``.

        ``best`` holds each group's minimal candidate key (``INF_KEY``
        where the pool is empty); the minimum of a lexicographic order is
        minimal in its prefix, so the best candidate's (score, finish,
        start) is exactly ``best`` unpacked. Empty pools stay ``INF_KEY``.
        """
        empty = best == INF_KEY
        scorefin = best >> self.start_bits
        start = best & self.start_mask
        key = ((((scorefin << self.n_bits) | (self.n_max - pool_n))
                << self.start_bits) | start) << self.rid_bits
        key |= grp_rid
        return np.where(empty, INF_KEY, key)

    # ------------------------------------------------------------------
    # Fault-plane columns (lazy, cached per fault-spec parameter)
    # ------------------------------------------------------------------

    def fault_layout(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-group ``(chronon, local resource id, instance)`` columns.

        One entry per per-chronon per-resource group — the granularity at
        which the fault model draws: a :class:`~repro.faults.model`
        decision for attempt 0 depends only on the probed resource and
        the chronon, both constant within a group.
        """
        if self._fault_layout is None:
            grp_T = np.repeat(self.act_chronons,
                              np.diff(self.grp_indptr))
            grp_rid_local = self.grp_rid % self.rid_stride
            grp_inst = self.grp_rid // self.rid_stride
            self._fault_layout = (grp_T, grp_rid_local, grp_inst)
        return self._fault_layout

    def fault_draw_column(self, seed: int, channel: str,
                          insts: frozenset[int]) -> np.ndarray:
        """Attempt-0 fault draws of one ``(seed, channel)``, per group.

        Reproduces :meth:`repro.faults.model.FaultInjector._draw`
        bit-for-bit: entry ``g`` holds
        ``random.Random(f"{seed}:{channel}:{rid}:{T}:0").random()`` for
        the group's (local) resource and chronon. Groups of instances
        outside ``insts`` (no lane with this seed runs on them) keep the
        sentinel 2.0, which no probability in [0, 1] ever exceeds.

        Draw keys are independent of whether the fast engine would have
        consumed the draw (a skipped channel consumes nothing), so
        precomputing every group unconditionally is stream-exact.
        """
        key = (seed, channel, insts)
        column = self._fault_cols.get(key)
        if column is None:
            grp_T, grp_rid_local, grp_inst = self.fault_layout()
            column = np.full(grp_T.size, 2.0)
            mask = np.isin(grp_inst, np.fromiter(insts, dtype=np.int64,
                                                 count=len(insts)))
            idx = np.nonzero(mask)[0]
            rng = random.Random
            prefix = f"{seed}:{channel}:"
            column[idx] = [
                rng(f"{prefix}{rid}:{T}:0").random()
                for rid, T in zip(grp_rid_local[idx].tolist(),
                                  grp_T[idx].tolist())]
            self._fault_cols[key] = column
        return column

    def commit_tie(self) -> np.ndarray:
        """Per-EI rank in the fast engine's candidate tie-break order.

        The packed candidate keys resolve equal (score, finish, start)
        positionally — fine for pool aggregation, where only the best
        *key* matters — but a failed probe commits the selected
        candidate's *identity*, and the fast engine breaks those ties by
        ``(profile_id, tinterval_id, seq, ei_id)``. This column ranks
        every EI in that order so the commit hook can pick the same
        candidate among key-equal ones.
        """
        if self._commit_tie is None:
            first = np.searchsorted(self.ei_state, self.ei_state)
            ei_id = np.arange(self.E, dtype=np.int64) - first
            seqs = self.ei_state
            order = np.lexsort((ei_id, seqs, self.st_tid[seqs],
                                self.st_profile[seqs]))
            tie = np.empty(self.E, dtype=np.int64)
            tie[order] = np.arange(self.E, dtype=np.int64)
            self._commit_tie = tie
        return self._commit_tie

    def outage_column(self, outages: tuple) -> np.ndarray:
        """Boolean per-group column: the group's resource is down then.

        ``outages`` is a :class:`~repro.faults.model.FaultSpec.outages`
        tuple; windows name *local* resource ids, so the mask marks the
        matching resource of every instance (a lane only ever consults
        its own instance's groups).
        """
        key = ("outage", outages)
        column = self._fault_cols.get(key)
        if column is None:
            grp_T, grp_rid_local, _grp_inst = self.fault_layout()
            column = np.zeros(grp_T.size, dtype=bool)
            for outage in outages:
                mask = grp_rid_local == outage.resource_id
                mask &= grp_T >= outage.start
                if outage.last is not None:
                    mask &= grp_T <= outage.last
                column |= mask
            self._fault_cols[key] = column
        return column
