"""Simulation environment: the online proxy loop and result types."""

from repro.simulation.engine import FastProxySimulator
from repro.simulation.proxy import ProxySimulator, run_online
from repro.simulation.result import SimulationResult

__all__ = [
    "FastProxySimulator",
    "ProxySimulator",
    "SimulationResult",
    "run_online",
]
