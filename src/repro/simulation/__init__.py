"""Simulation environment: the online proxy loop and result types."""

from repro.simulation.batch import batch_kind, run_block
from repro.simulation.churn import ChurnEvent, ChurnPlan, run_churned
from repro.simulation.columnar import BatchUnsupported, ColumnarInstance
from repro.simulation.engine import FastProxySimulator
from repro.simulation.proxy import ProxySimulator, run_online
from repro.simulation.result import SimulationResult
from repro.simulation.shard import FederatedResult, federated_run

__all__ = [
    "BatchUnsupported",
    "ChurnEvent",
    "ChurnPlan",
    "ColumnarInstance",
    "FastProxySimulator",
    "FederatedResult",
    "ProxySimulator",
    "SimulationResult",
    "batch_kind",
    "federated_run",
    "run_block",
    "run_churned",
    "run_online",
]
