"""Simulation environment: the online proxy loop and result types."""

from repro.simulation.batch import batch_kind, run_block
from repro.simulation.columnar import BatchUnsupported, ColumnarInstance
from repro.simulation.engine import FastProxySimulator
from repro.simulation.proxy import ProxySimulator, run_online
from repro.simulation.result import SimulationResult

__all__ = [
    "BatchUnsupported",
    "ColumnarInstance",
    "FastProxySimulator",
    "ProxySimulator",
    "SimulationResult",
    "batch_kind",
    "run_block",
    "run_online",
]
