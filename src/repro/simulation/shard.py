"""Sharded proxy federation over the columnar candidate index.

:func:`federated_run` advances one online run as ``K`` proxy shards plus
a :class:`~repro.runtime.federation.ShardCoordinator`. The consistent-
hash ring assigns every resource to a shard; each shard owns the slice
of the columnar per-resource candidate index (see
:mod:`repro.simulation.columnar`) covering its resources — contiguous
copies of the static key columns, so per-chronon key computation touches
only shard-local memory. T-intervals whose EIs span shards (allowed by
the paper's model) are handled by *state replication*: capture, doom
and M-EDF satisfiability aggregates live in a :class:`_Replica` that
every shard reads and the coordinator's per-chronon capture broadcast
keeps in sync, so a shard scores its local EIs with exactly the global
state a monolith would use.

Each chronon runs the propose/merge protocol:

1. every shard proposes its ``min(C_j, |owned pools|)`` best resource
   rank keys (packed monolith tie-break order, ending in the resource
   id — globally unique);
2. the coordinator merges proposals and takes the global top ``C_j`` —
   provably the monolith engine's own selection, since the global
   ``nsmallest`` of a union is the ``nsmallest`` of per-shard
   ``nsmallest``s (non-preemptive runs repeat the merge for the
   fresh-state pool, excluding already-probed resources);
3. the coordinator books the chronon's budget on the per-shard ledgers:
   nominal :func:`~repro.runtime.sharding.split_budget` shares,
   realized demand, and the deterministic
   :func:`~repro.runtime.sharding.steal_plan` transfers that moved
   unspendable residual budget to the most oversubscribed shards;
4. capture effects (the probed pools' candidate entries) are broadcast
   and absorbed by every replica.

Because selection is coordinator-exact, a federated run is
**probe-for-probe identical to the monolith engines for every shard
count** — gained-completeness degradation is zero by construction (the
federation benchmark reports it per shard count to prove it) — and the
ledgers record the work-stealing that realized the monolith schedule.

Fault layers (drops, outages, rate limits, retries, breaker) execute
coordinator-side through the columnar fault plane, RNG-stream exact
with the fast engine. ``workers=N`` advances the shards on a forked
process pool — each worker holds its shards' index slices plus a full
state replica fed by the capture broadcast — and is restricted to
fault-free runs (fault draws are a coordinator concern).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.budget import BudgetVector
from repro.core.profile import ProfileSet
from repro.core.timeline import Epoch
from repro.online.base import Policy
from repro.runtime.federation import ShardCoordinator
from repro.runtime.sharding import ShardLoad
from repro.simulation.batch import (
    FaultLane,
    _FaultPlane,
    _finalize,
    _make_lanes,
)
from repro.simulation.columnar import (
    BatchUnsupported,
    ColumnarInstance,
    INF_KEY,
)
from repro.simulation.result import SimulationResult

__all__ = ["FederatedResult", "federated_run"]

_DYNAMIC = frozenset({"mrsf", "anti", "coverage", "medf"})


@dataclass(frozen=True)
class FederatedResult:
    """Outcome of one federated run plus the federation's accounting.

    ``result`` is bit-identical to what the monolith fast engine
    produces for the same arguments. ``loads`` carries each shard's
    owned-resource count, routed probes and budget ledger;
    ``stolen_budget`` totals the units moved by work-stealing.
    """

    result: SimulationResult
    shards: int
    workers: int
    loads: tuple[ShardLoad, ...]
    stolen_budget: int
    steal_transfers: int

    @property
    def gc(self) -> float:
        return self.result.gc


class _Replica:
    """Full capture/doom/M-EDF state; coordinator and every shard
    worker hold one, kept identical by the capture broadcast."""

    __slots__ = ("col", "alive", "cap_count", "capsum", "sees_doom",
                 "undoomed", "need_medf", "_xe_at", "_n_xe",
                 "_xe_chronons", "_xe_indptr", "_xg_indptr")

    def __init__(self, col: ColumnarInstance, sees_doom: bool,
                 need_medf: bool) -> None:
        self.col = col
        self.alive = np.ones(col.E, dtype=bool)
        self.cap_count = np.zeros(col.S, dtype=np.int64)
        self.capsum = np.zeros(col.S, dtype=np.int64) if need_medf \
            else None
        self.need_medf = need_medf
        self.sees_doom = sees_doom
        self.undoomed = np.ones(col.S, dtype=bool)
        self._xe_at = 0
        self._n_xe = col.xe_chronons.size if sees_doom else 0
        self._xe_chronons = col.xe_chronons.tolist()
        self._xe_indptr = col.xe_indptr.tolist()
        self._xg_indptr = col.xg_indptr.tolist()

    def flush_expiry(self, T: int) -> None:
        """Apply every expiry event due by ``T`` to the doom flags."""
        col = self.col
        while (self._xe_at < self._n_xe
               and self._xe_chronons[self._xe_at] <= T):
            at = self._xe_at
            self._xe_at += 1
            lo = self._xe_indptr[at]
            hi = self._xe_indptr[at + 1]
            glo = self._xg_indptr[at]
            ghi = self._xg_indptr[at + 1]
            xe = col.xe_e[lo:hi]
            misses = self.alive[xe]
            seg = col.xg_starts[glo:ghi] - lo
            if seg.size != xe.size:
                misses = np.logical_or.reduceat(misses, seg)
            # One segment per state within a flush, so the fancy &= has
            # no duplicate targets.
            self.undoomed[col.xg_state[glo:ghi]] &= ~misses

    def absorb(self, entries: np.ndarray) -> np.ndarray:
        """Apply broadcast capture effects (candidate activity entries
        of the probed pools); returns the captured states."""
        col = self.col
        self.alive[col.act_e[entries]] = False
        states = col.ps_act[entries]
        np.add.at(self.cap_count, states, 1)
        if self.need_medf:
            np.add.at(self.capsum, states, col.fin_act[entries])
        return states


def _entry_keys(col: ColumnarInstance, rep: _Replica, kind: str,
                entries: np.ndarray, states: np.ndarray, T: int,
                cand: np.ndarray, gs_rel: np.ndarray,
                gof: np.ndarray) -> np.ndarray:
    """Candidate keys for arbitrary activity entries (the slow, generic
    path — used only for the rare commit-tie recompute under faults;
    shard slices precompute their static columns instead)."""
    if kind not in _DYNAMIC:
        return col.hi_static[kind][entries]
    if kind == "mrsf":
        return (col.hi_static["srank"][entries]
                - (rep.cap_count[states] << col.fs_bits))
    if kind == "anti":
        return (col.hi_static["anti"][entries]
                + (rep.cap_count[states] << col.fs_bits))
    if kind == "coverage":
        n_tot = np.add.reduceat(cand, gs_rel).astype(np.int64)
        return (((col.n_max - n_tot[gof]) << col.fs_bits)
                + col.finstart_act[entries])
    # medf
    base = (col.init_sum_act[entries] + col.medf_off
            - T * col.started_act[entries])
    score = base - rep.capsum[states] + T * rep.cap_count[states]
    return (score << col.fs_bits) + col.finstart_act[entries]


class _ShardSlice:
    """One shard's slice of the columnar candidate index.

    Owns contiguous copies of the static key columns for the activity
    entries of its resources' pools, plus the per-chronon group layout,
    so a proposal touches only shard-local memory plus the replicated
    per-state aggregates.
    """

    def __init__(self, col: ColumnarInstance, gids: np.ndarray,
                 kind: str, grp_next: np.ndarray,
                 grp_ti: np.ndarray) -> None:
        self.kind = kind
        self.n_max = col.n_max
        self.fs_bits = col.fs_bits
        self.medf_off = col.medf_off
        self.gids = gids
        self.grids = col.grp_rid[gids]
        starts = col.grp_starts[gids]
        sizes = (grp_next[gids] - starts).astype(np.int64)
        total = int(sizes.sum())
        cum = np.concatenate(([0], np.cumsum(sizes)))
        ramp = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1],
                                                            sizes)
        entries = np.repeat(starts, sizes) + ramp
        self.gs = cum  # group starts within the slice (+ total sentinel)
        self.gof = np.repeat(np.arange(gids.size, dtype=np.int64), sizes)
        # Per-chronon pointers into the (chronon-ordered) group list.
        n_act = col.act_chronons.size
        self.gptr = np.searchsorted(
            grp_ti[gids], np.arange(n_act + 1, dtype=np.int64))
        # Shard-local copies of the columns keys are computed from.
        self.ae = col.act_e[entries]
        self.ps = col.ps_act[entries]
        if kind in ("mrsf", "anti"):
            base_kind = "srank" if kind == "mrsf" else "anti"
            self.hi0 = col.hi_static[base_kind][entries]
        elif kind == "coverage":
            self.hi0 = col.finstart_act[entries]
        elif kind == "medf":
            self.hi0 = col.finstart_act[entries]
            self.base0 = col.init_sum_act[entries] + col.medf_off
            self.started = col.started_act[entries]
        else:
            self.hi0 = col.hi_static[kind][entries]
        self.resource_key = col.resource_key

    def propose(self, rep: _Replica, committed: np.ndarray | None,
                preemptive: bool, ti: int, T: int, budget: int,
                open_until: np.ndarray | None):
        """This shard's chronon proposals: phase-1 (and, non-preemptive,
        phase-2) ``(keys, pool gids)``, best first, ``INF_KEY`` pools
        dropped."""
        empty = np.zeros(0, dtype=np.int64)
        glo = int(self.gptr[ti])
        ghi = int(self.gptr[ti + 1])
        if glo == ghi or budget <= 0:
            return empty, empty, empty, empty
        elo = int(self.gs[glo])
        ehi = int(self.gs[ghi])
        states = self.ps[elo:ehi]
        cand = rep.alive[self.ae[elo:ehi]]
        if rep.sees_doom:
            cand &= rep.undoomed[states]
        if not cand.any():
            return empty, empty, empty, empty
        gs_rel = self.gs[glo:ghi] - elo
        kind = self.kind
        if kind == "mrsf":
            hi = self.hi0[elo:ehi] - (rep.cap_count[states]
                                      << self.fs_bits)
        elif kind == "anti":
            hi = self.hi0[elo:ehi] + (rep.cap_count[states]
                                      << self.fs_bits)
        elif kind == "coverage":
            n_tot = np.add.reduceat(cand, gs_rel).astype(np.int64)
            gof = self.gof[elo:ehi] - glo
            hi = (((self.n_max - n_tot[gof]) << self.fs_bits)
                  + self.hi0[elo:ehi])
        elif kind == "medf":
            score = (self.base0[elo:ehi] - T * self.started[elo:ehi]
                     - rep.capsum[states] + T * rep.cap_count[states])
            hi = (score << self.fs_bits) + self.hi0[elo:ehi]
        else:
            hi = self.hi0[elo:ehi]

        if preemptive:
            keys1, pools1 = self._rank(hi, cand, gs_rel, glo, ghi,
                                       budget, T, open_until)
            return keys1, pools1, empty, empty
        if committed is not None:
            comm = committed[states]
        else:
            comm = rep.cap_count[states] > 0
        keys1, pools1 = self._rank(hi, cand & comm, gs_rel, glo, ghi,
                                   budget, T, open_until)
        keys2, pools2 = self._rank(hi, cand & ~comm, gs_rel, glo, ghi,
                                   budget, T, open_until)
        return keys1, pools1, keys2, pools2

    def _rank(self, hi: np.ndarray, pool: np.ndarray,
              gs_rel: np.ndarray, glo: int, ghi: int, budget: int,
              T: int, open_until: np.ndarray | None):
        masked = np.where(pool, hi, INF_KEY)
        best = np.minimum.reduceat(masked, gs_rel)
        pool_n = np.add.reduceat(pool, gs_rel).astype(np.int64)
        grids = self.grids[glo:ghi]
        key = self.resource_key(best, pool_n, grids)
        if open_until is not None:
            key[open_until[grids] >= T] = INF_KEY
        G = key.size
        take = min(budget, G)
        if G <= 192:
            order = np.argsort(key)[:take]
        else:
            part = np.argpartition(key, take - 1)[:take]
            order = part[np.argsort(key[part])]
        keys = key[order]
        valid = keys != INF_KEY
        return keys[valid], self.gids[glo:ghi][order[valid]]


# ----------------------------------------------------------------------
# Forked shard workers
# ----------------------------------------------------------------------

def _worker_loop(conn, rep: _Replica, slices: list[_ShardSlice],
                 shard_ids: list[int], preemptive: bool,
                 act_chronons: list[int], budgets: list[int]) -> None:
    """One worker process: absorb the capture broadcast, advance its
    shards, answer with their proposals."""
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            ti, effects = message
            if effects is not None and effects.size:
                rep.absorb(effects)
            T = act_chronons[ti]
            rep.flush_expiry(T)
            budget = budgets[ti]
            conn.send([
                slices[shard].propose(rep, None, preemptive, ti, T,
                                      budget, None)
                for shard in shard_ids])
    except (EOFError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        conn.close()


class _ShardWorkerPool:
    """Forked processes advancing shard slices in parallel.

    Fork (not spawn) so every worker inherits the built columnar
    substrate and its slices copy-on-write; the per-chronon traffic is
    just the capture broadcast down and the proposals back.
    """

    def __init__(self, workers: int, rep: _Replica,
                 slices: list[_ShardSlice], preemptive: bool,
                 act_chronons: list[int], budgets: list[int]) -> None:
        import multiprocessing

        context = multiprocessing.get_context("fork")
        shards = len(slices)
        count = min(workers, shards)
        self._assignment = [list(range(w, shards, count))
                            for w in range(count)]
        self._conns = []
        self._procs = []
        for shard_ids in self._assignment:
            parent, child = context.Pipe()
            proc = context.Process(
                target=_worker_loop,
                args=(child, rep, slices, shard_ids, preemptive,
                      act_chronons, budgets),
                daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self.shards = shards

    def step(self, ti: int, effects: np.ndarray | None) -> list:
        """Broadcast one chronon; returns proposals in shard order."""
        for conn in self._conns:
            conn.send((ti, effects))
        by_shard: list = [None] * self.shards
        for shard_ids, conn in zip(self._assignment, self._conns):
            answers = conn.recv()
            for shard, answer in zip(shard_ids, answers):
                by_shard[shard] = answer
        return by_shard

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)


# ----------------------------------------------------------------------
# The federated chronon loop
# ----------------------------------------------------------------------

def federated_run(profiles: ProfileSet, epoch: Epoch,
                  budget: BudgetVector, policy: Policy, *,
                  preemptive: bool = True, shards: int = 4,
                  coordinator: ShardCoordinator | None = None,
                  faults=None, retry=None, breaker=None,
                  workers: int = 0,
                  columnar: ColumnarInstance | None = None,
                  ) -> FederatedResult:
    """Run one online simulation as a K-shard proxy federation.

    Returns a :class:`FederatedResult` whose ``result`` is
    probe-for-probe identical to
    ``run_online(..., engine="fast")`` for the same arguments — for any
    shard count — plus the federation's per-shard loads and
    work-stealing ledger. ``workers=N`` advances the shards on N forked
    worker processes (fault-free runs only); ``workers=0`` advances
    them in-process, with identical results.

    Raises :class:`~repro.simulation.columnar.BatchUnsupported` for
    policies without a columnar scoring kind (e.g. RANDOM) and
    instances whose packed keys overflow — such runs need the monolith
    fast engine.
    """
    started = time.perf_counter()
    col = columnar if columnar is not None else \
        ColumnarInstance.build(profiles, epoch)
    if col.n_inst != 1:
        raise ValueError("federated_run schedules one instance; build "
                         "the columnar form with a single ProfileSet")
    fault = None
    if faults is not None or retry is not None or breaker is not None:
        fault = FaultLane(faults, retry, breaker)
    lane_objs = _make_lanes([(policy, preemptive, budget, 0, fault)], 1)
    lane = lane_objs[0]
    plane = _FaultPlane(col, lane_objs) if lane.fault_active else None
    if plane is not None and workers:
        raise ValueError(
            "workers>0 advances shards in parallel, which only "
            "fault-free runs support — fault draws, retries and "
            "breaker state execute coordinator-side")

    coord = coordinator if coordinator is not None else \
        ShardCoordinator(shards)
    K = coord.shards
    owner = coord.assign(col.rid_stride)
    ownerg = owner[col.grp_rid]

    total_act = col.act_e.size
    grp_next = np.append(col.grp_starts[1:], total_act).astype(np.int64)
    grp_ti = np.repeat(
        np.arange(col.act_chronons.size, dtype=np.int64),
        np.diff(col.grp_indptr))
    slices = [
        _ShardSlice(col, np.nonzero(ownerg == shard)[0], lane.kind,
                    grp_next, grp_ti)
        for shard in range(K)]

    rep = _Replica(col, lane.sees_doom, lane.kind == "medf")
    committed = np.zeros(col.S, dtype=bool) \
        if plane is not None and not preemptive else None

    act_chronons = col.act_chronons.tolist()
    n_act = len(act_chronons)
    if lane.budget.is_constant():
        budgets = [lane.budget.default] * n_act
    else:
        budgets = [lane.budget.at(T) for T in act_chronons]
    grp_indptr = col.grp_indptr.tolist()

    pool = None
    if workers and K > 1:
        pool = _ShardWorkerPool(workers, rep, slices, preemptive,
                                act_chronons, budgets)
    schedule: dict[int, set[int]] = {}
    pending: np.ndarray | None = None

    try:
        for ti in range(n_act):
            T = act_chronons[ti]
            rep.flush_expiry(T)
            C = budgets[ti]
            if C <= 0:
                continue
            open_until = None
            if plane is not None and plane.blocking:
                open_until = plane.open_until[0]

            if pool is not None:
                per_shard = pool.step(ti, pending)
                pending = None
            else:
                per_shard = [
                    piece.propose(rep, committed, preemptive, ti, T, C,
                                  open_until)
                    for piece in slices]

            winners = ShardCoordinator.merge_proposals(
                [(keys1, pools1) for keys1, pools1, _k2, _p2 in per_shard
                 if pools1.size], C)
            if not preemptive and winners.size < C:
                second = ShardCoordinator.merge_proposals(
                    [(keys2, pools2) for _k1, _p1, keys2, pools2
                     in per_shard if pools2.size],
                    C - winners.size, exclude=winners)
                decisions = np.concatenate((winners, second))
            else:
                decisions = winners
            if decisions.size == 0:
                continue

            coord.settle(C, np.bincount(ownerg[decisions],
                                        minlength=K).tolist())

            glo = grp_indptr[ti]
            if plane is None:
                captured = decisions
            else:
                grids_T = col.grp_rid[glo:grp_indptr[ti + 1]]
                positions = np.arange(decisions.size, dtype=np.int64)
                cap_l, cap_g, failed = plane.execute(
                    T, glo, grids_T, np.zeros_like(decisions),
                    decisions - glo, positions,
                    np.array([C], dtype=np.int64))
                if committed is not None \
                        and winners.size < decisions.size:
                    _commit_failed(col, rep, lane.kind, committed,
                                   decisions, winners.size, failed,
                                   grp_next, T)
                captured = glo + cap_g

            if captured.size:
                entries = _entries_of(col, grp_next, captured)
                mask = rep.alive[col.act_e[entries]]
                if rep.sees_doom:
                    mask &= rep.undoomed[col.ps_act[entries]]
                entries = entries[mask]
                for rid in col.grp_rid[captured].tolist():
                    schedule.setdefault(rid, set()).add(T)
                states = rep.absorb(entries)
                if committed is not None and states.size:
                    committed[states] = True
                if pool is not None:
                    pending = entries
    finally:
        if pool is not None:
            pool.close()

    if plane is not None:
        plane.finish()
        stats = plane.lane_stats()[0]
    else:
        stats = (0, 0, 0)
    elapsed = time.perf_counter() - started
    result = _finalize(col, lane, schedule, rep.cap_count, elapsed,
                       stats)
    owned = np.bincount(owner[np.unique(col.grp_rid)],
                        minlength=K).tolist()
    loads = tuple(coord.loads(resources=owned))
    return FederatedResult(
        result=result, shards=K, workers=workers if pool else 0,
        loads=loads, stolen_budget=coord.ledger.transferred_units,
        steal_transfers=coord.ledger.transfers)


def _entries_of(col: ColumnarInstance, grp_next: np.ndarray,
                gids: np.ndarray) -> np.ndarray:
    """Activity-entry indices of the given pools (flat group ids)."""
    starts = col.grp_starts[gids]
    sizes = (grp_next[gids] - starts).astype(np.int64)
    total = int(sizes.sum())
    cum = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    ramp = np.arange(total, dtype=np.int64) - np.repeat(cum, sizes)
    return np.repeat(starts, sizes) + ramp


def _commit_failed(col: ColumnarInstance, rep: _Replica, kind: str,
                   committed: np.ndarray, decisions: np.ndarray,
                   n_phase1: int, failed: np.ndarray,
                   grp_next: np.ndarray, T: int) -> None:
    """A failed fresh-pool probe still commits its selected t-interval.

    Mirrors the batch engine's commitment hook: the selected candidate
    is the pool's key minimum, key-equal ties resolved by the fast
    engine's ``(profile_id, tinterval_id, seq, ei_id)`` order.
    """
    fail2 = np.nonzero(failed[n_phase1:])[0]
    if not fail2.size:
        return
    tie = col.commit_tie()
    for j in fail2.tolist():
        gid = int(decisions[n_phase1 + j])
        entries = np.arange(col.grp_starts[gid], grp_next[gid],
                            dtype=np.int64)
        states = col.ps_act[entries]
        cand = rep.alive[col.act_e[entries]]
        if rep.sees_doom:
            cand &= rep.undoomed[states]
        pool2 = cand & ~committed[states]
        keys = np.where(
            pool2,
            _entry_keys(col, rep, kind, entries, states, T, cand,
                        np.zeros(1, dtype=np.int64),
                        np.zeros(entries.size, dtype=np.int64)),
            INF_KEY)
        winners = np.nonzero(keys == keys.min())[0]
        best = int(winners[np.argmin(tie[col.act_e[entries]][winners])])
        committed[states[best]] = True
