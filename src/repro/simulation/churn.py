"""Churn-event plans for the live-churn fast engine.

A :class:`ChurnPlan` is an ordered list of :class:`ChurnEvent`\\ s —
mid-epoch profile registrations and cancellations — applied by
:meth:`FastProxySimulator.run(churn=...)
<repro.simulation.engine.FastProxySimulator.run>` between chronons.
Event semantics follow :class:`~repro.runtime.proxy.MonitoringProxy`:
an event at ``chronon == T`` lands while the proxy clock reads ``T``
(``T = 0`` means before the first chronon), so an added profile's
t-intervals participate from chronon ``T + 1`` on.

:func:`run_churned` is the one-call driver: it runs a full epoch with a
plan under either the incremental engine path (``mode="incremental"``,
O(log n + touched) per event) or the from-scratch referee
(``mode="rebuild"``, every event followed by
:meth:`~repro.simulation.engine.FastProxySimulator.rebuild_structures`).
Both modes produce identical results — that identity is what the
property suite :mod:`tests.properties.test_prop_churn_incremental`
asserts, and what ``benchmarks/bench_churn.py`` times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.budget import BudgetVector
from repro.core.errors import ModelError
from repro.core.profile import Profile, ProfileSet
from repro.core.timeline import Chronon, Epoch
from repro.faults.breaker import CircuitBreaker, RetryConfig
from repro.faults.model import FaultInjector, FaultSpec
from repro.online.base import Policy, TIntervalState
from repro.simulation.engine import FastProxySimulator
from repro.simulation.result import SimulationResult

__all__ = ["ChurnEvent", "ChurnPlan", "run_churned"]

_MODES = ("incremental", "rebuild")


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One mid-epoch registration ("add") or cancellation ("remove")."""

    chronon: Chronon
    action: str
    profile: Profile | None = None
    profile_id: int | None = None

    def __post_init__(self) -> None:
        if self.chronon < 0:
            raise ModelError(
                f"churn chronon must be >= 0, got {self.chronon}")
        if self.action == "add":
            if self.profile is None:
                raise ModelError("'add' events need a profile")
        elif self.action == "remove":
            if self.profile_id is None:
                raise ModelError("'remove' events need a profile_id")
        else:
            raise ModelError(
                f"churn action must be 'add' or 'remove', "
                f"got {self.action!r}")

    @classmethod
    def add(cls, chronon: Chronon, profile: Profile) -> "ChurnEvent":
        return cls(chronon=chronon, action="add", profile=profile)

    @classmethod
    def remove(cls, chronon: Chronon, profile_id: int) -> "ChurnEvent":
        return cls(chronon=chronon, action="remove",
                   profile_id=profile_id)


@dataclass(frozen=True, slots=True)
class ChurnPlan:
    """An ordered sequence of churn events.

    Same-chronon events apply in plan order — the order determines the
    arrival sequence numbers the engine's tie-breaks use, exactly as
    registration order does in the live proxy.
    """

    events: tuple[ChurnEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)


def run_churned(profiles: ProfileSet, epoch: Epoch,
                budget: BudgetVector, policy: Policy,
                plan=(), preemptive: bool = True,
                mode: str = "incremental",
                state_factory=TIntervalState,
                faults: FaultSpec | FaultInjector | None = None,
                retry: RetryConfig | None = None,
                breaker: CircuitBreaker | None = None) -> SimulationResult:
    """One full churned epoch on the fast engine.

    ``profiles`` is the initial (chronon-0-registered) set; ``plan``
    iterates churn events. ``mode="incremental"`` uses the O(log n)
    event-splicing path, ``mode="rebuild"`` rebuilds the derived
    structures from scratch after every event (the referee).
    """
    if mode not in _MODES:
        raise ModelError(f"mode must be one of {_MODES}, got {mode!r}")
    sim = FastProxySimulator(
        profiles, epoch, budget, policy, preemptive=preemptive,
        state_factory=state_factory, faults=faults, retry=retry,
        breaker=breaker)
    return sim.run(churn=plan, churn_rebuild=(mode == "rebuild"))
