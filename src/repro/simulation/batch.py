"""Columnar mega-batch simulation engine.

:func:`run_block` advances *many* fault-free online runs over one shared
instance — a whole policy lineup × every budget variant × every
repetition that maps to the same generated profiles — in a single
chronon-major vectorized loop. Each independent run is a **lane**: a
``(policy, preemptive, budget)`` triple with its own row in the
``(lanes, ...)`` state matrices (captured flags, per-state capture
counts, commitment and doom flags, M-EDF aggregates). One pass over the
instance's per-chronon activity CSR (see
:mod:`repro.simulation.columnar`) then serves every lane at once:

* candidate masks are boolean array ops over the chronon's activity
  slice;
* per-resource pool aggregation is a ``minimum.reduceat`` over packed
  int64 candidate keys (score, finish, start) — the reference engines'
  full lexicographic candidate order, including the ``(seq, ei_id)``
  tie-break, is encoded positionally, so an integer min IS the
  tie-broken best;
* resource ranking packs ``(score, finish, -pool, start, rid)`` into one
  int64 per (lane, resource) and selects each lane's ``C_j(T)`` smallest
  with one argsort/argpartition;
* non-preemptive lanes run the two-pool rule exactly: committed-state
  pools first, then fresh states for leftover budget;
* captures, budget decrements and the M-EDF sum/started aggregates are
  scatter-adds.

Faulty lanes ride the same pass (see :class:`FaultLane`): the
deterministic fault layer is lowered into lane-major columns too.
Because every :class:`~repro.faults.model.FaultInjector` draw is keyed
on ``(seed, channel, resource, chronon, attempt)`` — independent of
probe order — the attempt-0 draws of a whole block are precomputable
per-group columns (:meth:`ColumnarInstance.fault_draw_column`), shared
by every lane with the same spec seed. Outage windows and rate limits
are boolean/positional column ops, circuit-breaker state is a
``(lanes, resources)`` matrix applied as an ``INF_KEY`` mask before
selection, and the sparse residue vectorization would reorder — retry
attempts, whose draws and breaker trips happen in probe order — is
replayed per lane in exact decision order. The result is bit-for-bit
the fast engine's RNG stream, probe for probe (see
``tests/properties/test_prop_batch_faults.py``).

The engine is **schedule-identical** to
:class:`~repro.simulation.engine.FastProxySimulator` for every supported
policy (see ``tests/properties/test_prop_batch.py``): probe-for-probe,
report-for-report. Unsupported configurations — replayed/duck-typed
fault sources, subclassed retry/breaker components, policies outside
the known set, instances whose packed keys overflow — raise
:class:`~repro.simulation.columnar.BatchUnsupported`; callers fall back
to the fast engine.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.budget import BudgetVector
from repro.core.completeness import CompletenessReport
from repro.core.profile import ProfileSet
from repro.core.schedule import Schedule
from repro.core.timeline import Epoch
from repro.faults.breaker import CircuitBreaker, RetryConfig, _ResourceState
from repro.faults.model import FaultInjector, FaultRecord, FaultSpec
from repro.online.base import EI_LEVEL, Policy
from repro.runtime.server import PROBE_FAILED, PROBE_OK, PROBE_THROTTLED
from repro.online.baselines import (
    CoveragePolicy,
    FCFSPolicy,
    LeastFlexibleFirstPolicy,
    MostResidualFirstPolicy,
    StaticRankPolicy,
)
from repro.online.medf import MEDFPolicy
from repro.online.mrsf import MRSFPolicy
from repro.online.sedf import SEDFPolicy
from repro.simulation.columnar import (
    BatchUnsupported,
    ColumnarInstance,
    INF_KEY,
)
from repro.simulation.result import SimulationResult

__all__ = ["BatchUnsupported", "FaultLane", "batch_kind", "run_block"]

#: Supported policy types -> static-key kind. Exact type match only:
#: subclasses may override scoring in ways the columnar keys don't model.
_KINDS = {
    SEDFPolicy: "sedf",
    FCFSPolicy: "fcfs",
    LeastFlexibleFirstPolicy: "lff",
    StaticRankPolicy: "srank",
    MRSFPolicy: "mrsf",
    MostResidualFirstPolicy: "anti",
    CoveragePolicy: "coverage",
    MEDFPolicy: "medf",
}

_DYNAMIC_KINDS = frozenset({"mrsf", "anti", "coverage", "medf"})


def batch_kind(policy: Policy) -> str | None:
    """The batch engine's kind tag for ``policy``, or None if unsupported."""
    if type(policy) in _KINDS:
        return _KINDS[type(policy)]
    return None


@dataclass(frozen=True)
class FaultLane:
    """The fault layer of one lane — ``run_online``'s fault arguments.

    ``faults`` is a :class:`~repro.faults.model.FaultSpec` or a
    :class:`~repro.faults.model.FaultInjector` (a *recording* injector
    gets its trace filled exactly as the fast engine would fill it).
    Replayed or duck-typed decision sources, subclassed retry/breaker
    components, breakers carrying prior state, and breaker or recording
    injector objects shared across lanes cannot be lowered and raise
    :class:`BatchUnsupported` — callers fall back to the fast engine.
    """

    faults: object | None = None
    retry: RetryConfig | None = None
    breaker: CircuitBreaker | None = None


@dataclass(frozen=True)
class _Lane:
    policy: Policy
    preemptive: bool
    budget: BudgetVector
    inst: int
    kind: str
    sees_doom: bool
    spec: FaultSpec | None = None
    injector: FaultInjector | None = None
    max_retries: int = 0
    breaker: CircuitBreaker | None = None

    @property
    def fault_active(self) -> bool:
        # A null spec with no recording still behaves exactly like a
        # reliable lane; a recording injector always needs the plane so
        # its trace gets every (all-ok) decision.
        return self.injector is not None or (
            self.spec is not None and not self.spec.is_null)


def _lower_fault(fault: object | None, seen: set[int]):
    """Validate one lane's fault layer; -> (spec, injector, retries, brk).

    ``seen`` tracks object identities of stateful components (recording
    injectors, breakers): sharing one across lanes couples the lanes
    sequentially, which a lane-major pass cannot reproduce.
    """
    if fault is None:
        return None, None, 0, None
    if not isinstance(fault, FaultLane):
        raise BatchUnsupported(
            f"lane fault layer must be a FaultLane, got "
            f"{type(fault).__name__}")
    spec: FaultSpec | None = None
    injector: FaultInjector | None = None
    faults = fault.faults
    if faults is not None:
        if type(faults) is FaultInjector:
            spec = faults.spec
            if faults._record:
                if id(faults) in seen:
                    raise BatchUnsupported(
                        "a recording FaultInjector shared across lanes "
                        "interleaves their traces order-dependently")
                seen.add(id(faults))
                injector = faults
        elif type(faults) is FaultSpec:
            spec = faults
        else:
            # RecordedFaults (and arbitrary duck-typed sources) answer
            # from history, not from the keyed draw design the columns
            # precompute — only the fast engine can serve them.
            raise BatchUnsupported(
                f"fault source {type(faults).__name__} cannot be "
                "lowered to draw columns")
    retry = fault.retry
    if retry is not None and type(retry) is not RetryConfig:
        raise BatchUnsupported(
            f"retry config {type(retry).__name__} is not a plain "
            "RetryConfig")
    breaker = fault.breaker
    if breaker is not None:
        if type(breaker) is not CircuitBreaker:
            raise BatchUnsupported(
                f"breaker {type(breaker).__name__} is not a plain "
                "CircuitBreaker")
        if breaker._states or breaker.ever_quarantined:
            raise BatchUnsupported(
                "breaker carries prior state; the lowered plane starts "
                "from a clean matrix")
        if id(breaker) in seen:
            raise BatchUnsupported(
                "a CircuitBreaker shared across lanes couples them "
                "sequentially")
        seen.add(id(breaker))
    max_retries = retry.max_retries if retry is not None else 0
    return spec, injector, max_retries, breaker


def _make_lanes(lanes: Sequence[tuple], n_inst: int) -> list[_Lane]:
    out: list[_Lane] = []
    seen: set[int] = set()
    for spec in lanes:
        fault = None
        if len(spec) == 5:
            policy, preemptive, budget, inst, fault = spec
        elif len(spec) == 4:
            policy, preemptive, budget, inst = spec
        else:
            policy, preemptive, budget = spec
            inst = 0
        kind = batch_kind(policy)
        if kind is None:
            raise BatchUnsupported(
                f"policy {policy.name!r} ({type(policy).__name__}) has no "
                "columnar scoring kind")
        if not 0 <= inst < n_inst:
            raise BatchUnsupported(
                f"lane instance {inst} out of range for {n_inst} instances")
        fspec, injector, max_retries, breaker = _lower_fault(fault, seen)
        out.append(_Lane(policy, preemptive, budget, inst, kind,
                         policy.level != EI_LEVEL, fspec, injector,
                         max_retries, breaker))
    return out


def run_block(
    profiles: ProfileSet | Sequence[ProfileSet],
    epoch: Epoch,
    lanes: Sequence[tuple],
    *,
    columnar: ColumnarInstance | None = None,
) -> list[SimulationResult]:
    """Run every lane over the shared column space in one vectorized pass.

    ``profiles`` is one :class:`ProfileSet` or a sequence of them (a mega
    block over several same-epoch instances, e.g. a sweep cell's
    repetitions). Each lane is ``(policy, preemptive, budget)`` — with an
    optional fourth element naming the lane's instance index and an
    optional fifth carrying a :class:`FaultLane` (or None) — and gets
    one :class:`SimulationResult`, in lane order, identical to what
    ``FastProxySimulator(profiles[inst], epoch, budget, policy,
    preemptive).run()`` (with the lane's faults/retry/breaker) would
    produce — schedule, report, fault stats, breaker end state, and for
    recording injectors the :class:`~repro.faults.model.FaultTrace`,
    probe for probe. ``runtime_seconds`` is the block wall time split
    evenly across lanes (per-lane attribution is meaningless inside a
    shared pass).

    Raises :class:`BatchUnsupported` for policies without a columnar
    kind, instances whose packed keys overflow, or fault layers the
    plane cannot lower (see :class:`FaultLane`).
    """
    started = time.perf_counter()
    if columnar is not None:
        col = columnar
    elif isinstance(profiles, ProfileSet):
        col = ColumnarInstance.build(profiles, epoch)
    else:
        col = ColumnarInstance.build_many(profiles, epoch)
    lane_objs = _make_lanes(lanes, col.n_inst)
    L = len(lane_objs)
    probes = _advance(col, lane_objs) if L else []
    elapsed = time.perf_counter() - started
    per_lane = elapsed / L if L else 0.0
    return [_finalize(col, lane, lane_sched, lane_caps, per_lane, stats)
            for lane, lane_sched, lane_caps, stats in probes]


# ----------------------------------------------------------------------
# The lowered fault plane
# ----------------------------------------------------------------------

class _FaultPlane:
    """Lane-major lowering of the fault layer for one block.

    Attempt-0 decisions vectorize completely: the keyed draws are
    precomputed per-group columns (one row per distinct spec seed,
    row 0 a ``2.0`` sentinel no probability can beat), outages are a
    boolean column, and the rate limit is positional — the fast engine's
    per-chronon request counter equals ``decision position + 1`` because
    :meth:`FaultInjector.decide` counts *every* call, outage-covered or
    throttled included. Breaker state lives in ``(lane, resource)``
    matrices; attempt-0 successes/failures update it with one fancy
    assignment per chronon (each lane probes a resource at most once per
    chronon, so targets never collide), and only the rare tripping
    entries drop to Python for the bit-exact ``_cooldown_for`` ceil.

    Retries are the sparse residue vectorization would reorder — their
    draws, budget debits and breaker trips happen in probe order — so
    they replay per lane over that lane's failed decisions in decision
    order, exactly :func:`repro.faults.engine.execute_probes`, with a
    memo de-duplicating draws across lanes sharing a spec seed.
    """

    def __init__(self, col: ColumnarInstance,
                 lane_objs: list[_Lane]) -> None:
        self.lanes = lane_objs
        L = self.L = len(lane_objs)
        self.rid_stride = stride = col.rid_stride
        grp_T, grp_rid_local, _grp_inst = col.fault_layout()
        self.grp_rid_local = grp_rid_local
        n_groups = grp_T.size

        self.rate_mat = np.zeros((L, stride))
        self.t_prob = np.zeros(L)
        self.s_prob = np.zeros(L)
        self.maxp = np.full(L, np.iinfo(np.int64).max, dtype=np.int64)
        self.max_retries = [ln.max_retries for ln in lane_objs]
        self.injectors = [ln.injector for ln in lane_objs]
        self.specs = [ln.spec for ln in lane_objs]
        self.any_rec = any(inj is not None for inj in self.injectors)
        for i, ln in enumerate(lane_objs):
            spec = ln.spec
            if spec is None:
                continue
            self.rate_mat[i, :] = spec.failure_probability
            for rid, rate in spec.per_resource.items():
                if 0 <= rid < stride:
                    self.rate_mat[i, rid] = rate
            self.t_prob[i] = spec.timeout_probability
            self.s_prob[i] = spec.stale_probability
            if spec.max_probes_per_chronon is not None:
                self.maxp[i] = spec.max_probes_per_chronon

        # Draw columns must cover every instance any lane of the seed
        # touches; lanes of other instances read the 2.0 sentinel, but
        # their picks never land outside their own instance anyway.
        insts_by_seed: dict[int, set[int]] = {}
        for ln in lane_objs:
            if ln.spec is not None:
                insts_by_seed.setdefault(ln.spec.seed, set()).add(ln.inst)

        def build(channel: str, need) -> tuple[np.ndarray, np.ndarray]:
            rows = [np.full(n_groups, 2.0)]
            row_of = np.zeros(L, dtype=np.int64)
            by_seed: dict[int, int] = {}
            for i, ln in enumerate(lane_objs):
                spec = ln.spec
                if spec is None or not need(spec, i):
                    continue
                row = by_seed.get(spec.seed)
                if row is None:
                    row = len(rows)
                    insts = frozenset(insts_by_seed[spec.seed])
                    rows.append(col.fault_draw_column(
                        spec.seed, channel, insts))
                    by_seed[spec.seed] = row
                row_of[i] = row
            return np.vstack(rows), row_of

        self.DROP, self.drop_rows = build(
            "drop", lambda s, i: bool(self.rate_mat[i].any()))
        self.TMO, self.tmo_rows = build(
            "timeout", lambda s, i: s.timeout_probability > 0.0)
        # Stale flips no outcome, only the trace flag — recording lanes
        # are the only consumers of the stale column.
        self.STL, self.stl_rows = build(
            "stale", lambda s, i: (s.stale_probability > 0.0
                                   and self.injectors[i] is not None))

        out_rows = np.zeros(L, dtype=np.int64)
        rows = [np.zeros(n_groups, dtype=bool)]
        by_cfg: dict[tuple, int] = {}
        for i, ln in enumerate(lane_objs):
            spec = ln.spec
            if spec is None or not spec.outages:
                continue
            row = by_cfg.get(spec.outages)
            if row is None:
                row = len(rows)
                rows.append(col.outage_column(spec.outages))
                by_cfg[spec.outages] = row
            out_rows[i] = row
        self.OUT = np.vstack(rows)
        self.out_rows = out_rows

        rid_space = stride * col.n_inst
        self.has_brk = np.array([ln.breaker is not None
                                 for ln in lane_objs])
        self.any_brk = bool(self.has_brk.any())
        self.thresh = np.full(L, np.iinfo(np.int64).max, dtype=np.int64)
        for i, ln in enumerate(lane_objs):
            if ln.breaker is not None:
                self.thresh[i] = ln.breaker.failure_threshold
        self.consec = np.zeros((L, rid_space), dtype=np.int64)
        self.open_until = np.full((L, rid_space), -1, dtype=np.int64)
        self.trips = np.zeros((L, rid_space), dtype=np.int64)
        self.ever = np.zeros((L, rid_space), dtype=bool)
        self.blocking = False  # sticky: any breaker ever tripped

        self.failures = np.zeros(L, dtype=np.int64)
        self.retries = np.zeros(L, dtype=np.int64)
        self._memo: dict[tuple, float] = {}

    def blocked(self, grids: np.ndarray, T: int) -> np.ndarray | None:
        """(lanes, groups) quarantine mask for this chronon, or None."""
        if not self.blocking:
            return None
        return self.open_until[:, grids] >= T

    def _draw(self, seed: int, channel: str, rid: int, T: int,
              attempt: int) -> float:
        key = (seed, channel, rid, T, attempt)
        val = self._memo.get(key)
        if val is None:
            val = random.Random(
                f"{seed}:{channel}:{rid}:{T}:{attempt}").random()
            self._memo[key] = val
        return val

    def _trip(self, ls: np.ndarray, rs: np.ndarray, T: int) -> None:
        self.blocking = True
        for i, r in zip(ls.tolist(), rs.tolist()):
            brk = self.lanes[i].breaker
            self.open_until[i, r] = T + brk._cooldown_for(
                int(self.trips[i, r]))
            self.trips[i, r] += 1
            self.ever[i, r] = True

    def execute(self, T: int, glo: int, grids: np.ndarray,
                lanes_pk: np.ndarray, g_pk: np.ndarray,
                pos_pk: np.ndarray, k_arr: np.ndarray):
        """Decide every pick of this chronon; -> (cap_lanes, cap_gs, fail).

        ``lanes_pk``/``g_pk``/``pos_pk`` are the chronon's selections as
        (lane, local group, decision position) columns — per lane in
        decision order. The returned capture columns are the ok picks
        plus retry recoveries; ``fail`` flags the attempt-0 failures
        (recovered or not) for the caller's commitment hook.
        """
        gg = glo + g_pk
        rid_glob = grids[g_pk]
        rid_loc = self.grp_rid_local[gg]
        out = self.OUT[self.out_rows[lanes_pk], gg]
        thr = ~out & (pos_pk + 1 > self.maxp[lanes_pk])
        fail = out | thr
        live = ~fail
        drop = live & (self.DROP[self.drop_rows[lanes_pk], gg]
                       < self.rate_mat[lanes_pk, rid_loc])
        fail |= drop
        live &= ~drop
        tmo = live & (self.TMO[self.tmo_rows[lanes_pk], gg]
                      < self.t_prob[lanes_pk])
        fail |= tmo
        ok = ~fail

        if self.any_brk:
            hb = self.has_brk[lanes_pk]
            s_sel = ok & hb
            if s_sel.any():
                ls, rs = lanes_pk[s_sel], rid_glob[s_sel]
                # record_success pops the whole resource state.
                self.consec[ls, rs] = 0
                self.trips[ls, rs] = 0
                self.open_until[ls, rs] = -1
            f_sel = fail & hb
            if f_sel.any():
                lf, rf = lanes_pk[f_sel], rid_glob[f_sel]
                newc = self.consec[lf, rf] + 1
                self.consec[lf, rf] = newc
                trip = newc >= self.thresh[lf]
                if trip.any():
                    self._trip(lf[trip], rf[trip], T)

        if self.any_rec:
            stl = ok & (self.STL[self.stl_rows[lanes_pk], gg]
                        < self.s_prob[lanes_pk])
            for i, inj in enumerate(self.injectors):
                if inj is None:
                    continue
                for j in np.nonzero(lanes_pk == i)[0].tolist():
                    if out[j]:
                        st, flt, sl = PROBE_FAILED, "outage", False
                    elif thr[j]:
                        st, flt, sl = PROBE_THROTTLED, "rate-limit", False
                    elif drop[j]:
                        st, flt, sl = PROBE_FAILED, "drop", False
                    elif tmo[j]:
                        st, flt, sl = PROBE_FAILED, "timeout", False
                    elif stl[j]:
                        st, flt, sl = PROBE_OK, "stale", True
                    else:
                        st, flt, sl = PROBE_OK, None, False
                    inj.trace.append(FaultRecord(
                        chronon=T, resource_id=int(rid_loc[j]),
                        attempt=0, status=st, fault=flt, stale=sl))

        self.failures += np.bincount(lanes_pk[fail], minlength=self.L)
        extra_l: list[int] = []
        extra_g: list[int] = []
        if fail.any():
            n_dec = np.bincount(lanes_pk, minlength=self.L)
            for i in np.unique(lanes_pk[fail]).tolist():
                mr = self.max_retries[i]
                if mr == 0:
                    continue
                rec = self._retry_lane(
                    i, T, lanes_pk, fail, rid_glob, rid_loc, out,
                    int(k_arr[i]) - int(n_dec[i]), int(n_dec[i]), mr)
                for j in rec:
                    extra_l.append(i)
                    extra_g.append(int(g_pk[j]))

        ok_idx = np.nonzero(ok)[0]
        cap_l = lanes_pk[ok_idx]
        cap_g = g_pk[ok_idx]
        if extra_l:
            cap_l = np.concatenate(
                (cap_l, np.asarray(extra_l, dtype=np.int64)))
            cap_g = np.concatenate(
                (cap_g, np.asarray(extra_g, dtype=np.int64)))
        return cap_l, cap_g, fail

    def _retry_lane(self, i: int, T: int, lanes_pk, fail, rid_glob,
                    rid_loc, out, budget_left: int, counter: int,
                    mr: int) -> list[int]:
        """Replay lane i's retries in decision order; -> recovered picks."""
        spec = self.specs[i]
        brk = self.lanes[i].breaker
        inj = self.injectors[i]
        recovered: list[int] = []
        for j in np.nonzero((lanes_pk == i) & fail)[0].tolist():
            rg = int(rid_glob[j])
            rl = int(rid_loc[j])
            down = bool(out[j])
            for a in range(1, mr + 1):
                if budget_left <= 0:
                    break
                if brk is not None and self.open_until[i, rg] >= T:
                    break
                budget_left -= 1
                counter += 1
                self.retries[i] += 1
                st, flt, sl = PROBE_OK, None, False
                if down:
                    st, flt = PROBE_FAILED, "outage"
                elif (spec.max_probes_per_chronon is not None
                        and counter > spec.max_probes_per_chronon):
                    st, flt = PROBE_THROTTLED, "rate-limit"
                else:
                    rate = spec.failure_rate_for(rl)
                    if rate > 0.0 and self._draw(
                            spec.seed, "drop", rl, T, a) < rate:
                        st, flt = PROBE_FAILED, "drop"
                    elif (spec.timeout_probability > 0.0
                            and self._draw(spec.seed, "timeout", rl, T, a)
                            < spec.timeout_probability):
                        st, flt = PROBE_FAILED, "timeout"
                    elif (spec.stale_probability > 0.0
                            and self._draw(spec.seed, "stale", rl, T, a)
                            < spec.stale_probability):
                        flt, sl = "stale", True
                if inj is not None:
                    inj.trace.append(FaultRecord(
                        chronon=T, resource_id=rl, attempt=a,
                        status=st, fault=flt, stale=sl))
                if st == PROBE_OK:
                    if brk is not None:
                        self.consec[i, rg] = 0
                        self.trips[i, rg] = 0
                        self.open_until[i, rg] = -1
                    recovered.append(j)
                    break
                self.failures[i] += 1
                if brk is not None:
                    c = int(self.consec[i, rg]) + 1
                    self.consec[i, rg] = c
                    if c >= brk.failure_threshold:
                        self.open_until[i, rg] = T + brk._cooldown_for(
                            int(self.trips[i, rg]))
                        self.trips[i, rg] += 1
                        self.ever[i, rg] = True
                        self.blocking = True
        return recovered

    def finish(self) -> None:
        """Push the state matrices back into the lane breaker objects."""
        for i, ln in enumerate(self.lanes):
            brk = ln.breaker
            if brk is None:
                continue
            off = ln.inst * self.rid_stride
            for r in np.nonzero(self.ever[i])[0].tolist():
                brk.ever_quarantined.add(r - off)
            # A resource keeps a _ResourceState exactly while its last
            # event was a failure (success pops it).
            for r in np.nonzero(self.consec[i] > 0)[0].tolist():
                state = _ResourceState()
                state.consecutive_failures = int(self.consec[i, r])
                state.open_until = int(self.open_until[i, r])
                state.trips = int(self.trips[i, r])
                brk._states[r - off] = state

    def lane_stats(self) -> list[tuple[int, int, int]]:
        return [(int(self.failures[i]), int(self.retries[i]),
                 int(self.ever[i].sum())) for i in range(self.L)]


# ----------------------------------------------------------------------
# The chronon-major loop
# ----------------------------------------------------------------------

def _advance(col: ColumnarInstance, lane_objs: list[_Lane]):
    L = len(lane_objs)
    S, E = col.S, col.E
    lane_inst = np.array([ln.inst for ln in lane_objs], dtype=np.int64)
    # Capture state is kept *inverted* (alive = still uncaptured) so the
    # hot per-chronon gathers need no element-wise NOT. Foreign EIs
    # (other instances in a mega block) start dead: they can never
    # become candidates, never doom, never count — the whole
    # cross-instance separation in one init.
    alive = col.ei_inst[None, :] == lane_inst[:, None]
    cap_count = np.zeros((L, S), dtype=np.int64)
    # A state is committed exactly when it has ever yielded a capture
    # (the fault-free path never reaches the explicit commit hook), so
    # commitment is a *view* of cap_count — no separate scatter needed.
    # Doom flags (inverted, like alive) are only ever *cleared* for
    # lanes whose policy outranks the EI level (sees_doom); other rows
    # stay all-True, so one uniform mask works for every lane.
    undoomed = np.ones((L, S), dtype=bool)

    np_rows = np.array([i for i, ln in enumerate(lane_objs)
                        if not ln.preemptive], dtype=np.int64)
    plane = _FaultPlane(col, lane_objs) \
        if any(ln.fault_active for ln in lane_objs) else None
    # Under faults a failed probe commits its selected t-interval without
    # capturing anything, so commitment stops being a view of cap_count
    # and needs its own matrix (only non-preemptive pools read it).
    committed = np.zeros((L, S), dtype=bool) \
        if plane is not None and np_rows.size else None
    doom_rows = np.array([i for i, ln in enumerate(lane_objs)
                          if ln.sees_doom], dtype=np.int64)
    kind_rows: dict[str, np.ndarray] = {}
    for kind in dict.fromkeys(ln.kind for ln in lane_objs):
        kind_rows[kind] = np.array(
            [i for i, ln in enumerate(lane_objs) if ln.kind == kind],
            dtype=np.int64)
    medf_rows = kind_rows.get("medf")
    need_medf = medf_rows is not None
    if need_medf:
        capsum = np.zeros((L, S), dtype=np.int64)
        capsum_flat = capsum.reshape(-1)
        is_medf = np.zeros(L, dtype=bool)
        is_medf[medf_rows] = True
    cap_flat = cap_count.reshape(-1)

    n_act = col.act_chronons.size
    # Per-lane budget for each *active* chronon; inactive chronons have
    # no candidates, so their budget can never be spent.
    budgets = np.empty((L, n_act), dtype=np.int64)
    for i, ln in enumerate(lane_objs):
        if ln.budget.is_constant():
            budgets[i] = ln.budget.default
        else:
            budgets[i] = [ln.budget.at(int(T)) for T in col.act_chronons]

    fs_bits = col.fs_bits
    n_max = col.n_max
    medf_off = col.medf_off
    hi2d = np.empty((L, 0), dtype=np.int64)
    lane_col = np.arange(L)[:, None]
    g_max = int(np.diff(col.grp_indptr).max()) if n_act else 0
    col_idx = np.arange(max(g_max, 1), dtype=np.int64)
    # Scalar per-chronon reads go through plain Python lists — ndarray
    # scalar indexing costs several times more in the hot loop.
    kmax_per_t = budgets.max(axis=0).tolist()
    act_chronons = col.act_chronons.tolist()
    act_indptr = col.act_indptr.tolist()
    act_e = col.act_e
    ps_act = col.ps_act
    grp_indptr = col.grp_indptr.tolist()
    grp_starts = col.grp_starts
    grp_rid = col.grp_rid
    grp_of_flat = col.grp_of
    finstart_flat = col.finstart_act
    hi_static = col.hi_static
    started_flat = col.started_act
    init_flat = col.init_sum_act
    fin_flat = col.fin_act
    resource_key = col.resource_key

    # (chronon, lane rows, resource ids) per chronon with probes; grouped
    # into per-lane schedules once after the loop.
    probe_log: list[tuple[int, np.ndarray, np.ndarray]] = []
    xe_ti = 0
    n_xe = col.xe_chronons.size if doom_rows.size else 0
    xe_chronons = col.xe_chronons.tolist()
    xe_indptr = col.xe_indptr.tolist()
    xg_indptr = col.xg_indptr.tolist()
    doom_col = doom_rows[:, None]

    for ti in range(n_act):
        T = act_chronons[ti]

        # Expiry events: flush everything due by T. Captured status is
        # frozen once an EI's window closes, so deferring an expiry from
        # a quiet chronon to the next active one is exact. (With no
        # doom-sensitive lane n_xe is 0 and the flush never runs.)
        while xe_ti < n_xe and xe_chronons[xe_ti] <= T:
            lo = xe_indptr[xe_ti]
            hi = xe_indptr[xe_ti + 1]
            glo2 = xg_indptr[xe_ti]
            ghi2 = xg_indptr[xe_ti + 1]
            xe_ti += 1
            xe = col.xe_e[lo:hi]
            misses = alive[doom_col, xe[None, :]]
            # OR-reduce to one column per state before the fancy &=:
            # duplicate targets in a buffered assign would be lossy.
            seg = col.xg_starts[glo2:ghi2] - lo
            if seg.size != xe.size:
                misses = np.logical_or.reduceat(misses, seg, axis=1)
            undoomed[doom_col, col.xg_state[glo2:ghi2][None, :]] &= ~misses

        kmax = kmax_per_t[ti]
        if kmax <= 0:
            continue
        k_arr = budgets[:, ti]

        alo = act_indptr[ti]
        ahi = act_indptr[ti + 1]
        A = ahi - alo
        ae = act_e[alo:ahi]
        ps = ps_act[alo:ahi]
        glo = grp_indptr[ti]
        ghi = grp_indptr[ti + 1]
        G = ghi - glo
        gs_local = grp_starts[glo:ghi] - alo
        grids = grp_rid[glo:ghi]
        grp_of = grp_of_flat[alo:ahi]
        finstart = finstart_flat[alo:ahi]

        cand = alive[:, ae]
        if doom_rows.size:
            cand &= undoomed[:, ps]
        if not cand.any():
            continue

        # Per-lane candidate keys (score, finish, start) packed int64.
        if hi2d.shape[1] < A:
            hi2d = np.empty((L, A), dtype=np.int64)
        hi = hi2d[:, :A]
        for kind, rows in kind_rows.items():
            if kind not in _DYNAMIC_KINDS:
                hi[rows] = hi_static[kind][alo:ahi]
            elif kind == "mrsf":
                capg = cap_count[rows[:, None], ps[None, :]]
                hi[rows] = (hi_static["srank"][alo:ahi]
                            - (capg << fs_bits))
            elif kind == "anti":
                capg = cap_count[rows[:, None], ps[None, :]]
                hi[rows] = (hi_static["anti"][alo:ahi]
                            + (capg << fs_bits))
            elif kind == "coverage":
                # Coverage scores -len(pool) over the *full* candidate
                # index (both NP pools), offset to n_max - len(pool).
                n_tot = np.add.reduceat(
                    cand[rows], gs_local, axis=1).astype(np.int64)
                hi[rows] = (((n_max - n_tot[:, grp_of]) << fs_bits)
                            + finstart)
            elif kind == "medf":
                rc = rows[:, None]
                pc = ps[None, :]
                # Lane-independent part first (A-sized, not lanes x A).
                base = (init_flat[alo:ahi] + medf_off
                        - T * started_flat[alo:ahi])
                score = (base - capsum[rc, pc]) + T * cap_count[rc, pc]
                hi[rows] = (score << fs_bits) + finstart
            else:  # pragma: no cover - _make_lanes already screened kinds
                raise BatchUnsupported(f"unknown kind {kind!r}")

        # Phase 1 pools: preemptive lanes see every candidate;
        # non-preemptive lanes only candidates of committed states.
        if np_rows.size:
            if committed is None:
                comm_np = cap_count[np_rows[:, None], ps[None, :]] > 0
            else:
                comm_np = committed[np_rows[:, None], ps[None, :]]
            pool = cand.copy()
            pool[np_rows] &= comm_np
        else:
            pool = cand

        masked = np.where(pool, hi, INF_KEY)
        best = np.minimum.reduceat(masked, gs_local, axis=1)
        pool_n = np.add.reduceat(pool, gs_local, axis=1).astype(np.int64)
        res_key = resource_key(best, pool_n, grids)
        # Quarantined resources drop out of selection *after* pool sizes
        # are packed — the fast engine filters its cached pool the same
        # way, leaving the -len(pool) key component untouched.
        blocked = plane.blocked(grids, T) if plane is not None else None
        if blocked is not None:
            res_key[blocked] = INF_KEY

        # Each lane takes its k_l smallest rank keys; INF_KEY (empty
        # pool) sorts last, so the first k_l valid slots of the sorted
        # order are exactly the fast engine's nsmallest picks. A full
        # argsort beats the argpartition + small-sort chain until G is
        # well into the hundreds (measured crossover ~200).
        take = min(kmax, G)
        if G <= 192:
            order = np.argsort(res_key, axis=1)[:, :take]
        else:
            part = np.argpartition(res_key, take - 1, axis=1)[:, :take]
            order = part[lane_col, np.argsort(res_key[lane_col, part],
                                              axis=1)]
        ranked = res_key[lane_col, order]
        sel = (ranked != INF_KEY) & (col_idx[:take][None, :]
                                     < k_arr[:, None])
        picks = np.zeros((L, G), dtype=bool)
        rr, cc = np.nonzero(sel)
        gids = order[rr, cc]
        picks[rr, gids] = True
        pr_rows, pr_gs = rr, gids
        # Valid picks are a contiguous prefix of each lane's sorted
        # order, so cc IS the lane's decision position — which the fault
        # plane needs for the positional rate limit.
        pr_pos = cc
        n1 = rr.size

        # Phase 2: non-preemptive lanes spend leftover budget on fresh
        # (uncommitted) states, excluding already-probed resources.
        if np_rows.size:
            d1 = sel.sum(axis=1)
            left = ((k_arr[np_rows] > d1[np_rows])
                    & (k_arr[np_rows] > 0))
            rows2 = np_rows[left]
        else:
            rows2 = np_rows
        if rows2.size:
            pool2 = cand[rows2] & ~comm_np[left]
            masked2 = np.where(pool2, hi[rows2], INF_KEY)
            best2 = np.minimum.reduceat(masked2, gs_local, axis=1)
            n2 = np.add.reduceat(pool2, gs_local, axis=1).astype(np.int64)
            key2 = resource_key(best2, n2, grids)
            if blocked is not None:
                key2[blocked[rows2]] = INF_KEY
            key2[picks[rows2]] = INF_KEY
            need = k_arr[rows2] - d1[rows2]
            nmax2 = int(need.max())
            take2 = min(nmax2, G)
            row2_col = np.arange(rows2.size)[:, None]
            if G <= 192:
                order2 = np.argsort(key2, axis=1)[:, :take2]
            else:
                part2 = np.argpartition(key2, take2 - 1,
                                        axis=1)[:, :take2]
                order2 = part2[row2_col,
                               np.argsort(key2[row2_col, part2], axis=1)]
            ranked2 = key2[row2_col, order2]
            sel2 = (ranked2 != INF_KEY) & (col_idx[:take2][None, :]
                                           < need[:, None])
            rr2, cc2 = np.nonzero(sel2)
            gids2 = order2[rr2, cc2]
            picks[rows2[rr2], gids2] = True
            pr_rows = np.concatenate((pr_rows, rows2[rr2]))
            pr_gs = np.concatenate((pr_gs, gids2))
            # Phase-2 decision positions continue after phase 1's.
            pr_pos = np.concatenate((pr_pos, d1[rows2[rr2]] + cc2))

        # Captures: a probed resource yields *every* candidate on it.
        if pr_rows.size == 0:
            continue
        if plane is None:
            probe_log.append((T, pr_rows, grids[pr_gs]))
            er, ec = np.nonzero(cand & picks[:, grp_of])
            alive[er, ae[ec]] = False
            flat = er * S + ps[ec]
            np.add.at(cap_flat, flat, 1)
            if need_medf:
                m = is_medf[er]
                np.add.at(capsum_flat, flat[m], fin_flat[alo:ahi][ec[m]])
            continue

        cap_l, cap_g, fl = plane.execute(T, glo, grids, pr_rows, pr_gs,
                                         pr_pos, k_arr)
        if committed is not None and n1 < pr_rows.size:
            # A failed probe still commits its *selected* t-interval
            # (budget was spent on it). Only fresh-pool (phase-2) picks
            # can flip commitment — phase-1 NP picks come from the
            # committed pool and preemptive lanes never read the flag.
            # The selected candidate is pool 2's segment argmin: first
            # index with the min key, the reduceat winner.
            fail2 = np.nonzero(fl[n1:])[0]
            if fail2.size:
                tie = col.commit_tie()[ae]
                row2_of = np.zeros(L, dtype=np.int64)
                row2_of[rows2] = np.arange(rows2.size)
                for j in fail2.tolist():
                    jj = n1 + j
                    i = int(pr_rows[jj])
                    g = int(pr_gs[jj])
                    lo2 = int(gs_local[g])
                    hi2 = int(gs_local[g + 1]) if g + 1 < G else A
                    keys = masked2[int(row2_of[i]), lo2:hi2]
                    # The selected candidate is the segment's key min —
                    # key-equal ties resolved by the fast engine's
                    # (pid, tid, seq, ei_id) candidate order, which the
                    # packed key does not encode.
                    w = np.nonzero(keys == keys.min())[0]
                    jbest = int(w[np.argmin(tie[lo2:hi2][w])])
                    committed[i, ps[lo2 + jbest]] = True
        if cap_l.size:
            probe_log.append((T, cap_l, grids[cap_g]))
            picks_ok = np.zeros((L, G), dtype=bool)
            picks_ok[cap_l, cap_g] = True
            er, ec = np.nonzero(cand & picks_ok[:, grp_of])
            alive[er, ae[ec]] = False
            if committed is not None:
                committed[er, ps[ec]] = True
            flat = er * S + ps[ec]
            np.add.at(cap_flat, flat, 1)
            if need_medf:
                m = is_medf[er]
                np.add.at(capsum_flat, flat[m], fin_flat[alo:ahi][ec[m]])

    # Group the probe log into per-lane, per-resource chronon sets — the
    # exact shape Schedule stores. Insertion order is irrelevant:
    # Schedule.probes() sorts by (chronon, resource).
    lane_scheds: list[dict[int, set[int]]] = [{} for _ in range(L)]
    if probe_log:
        rows_all = np.concatenate([r for _, r, _ in probe_log])
        rids_all = np.concatenate([g for _, _, g in probe_log])
        ts_all = np.concatenate(
            [np.full(r.size, t, dtype=np.int64) for t, r, _ in probe_log])
        # Undo the per-instance resource-id offset before reporting.
        rids_all = rids_all - lane_inst[rows_all] * col.rid_stride
        order = np.lexsort((rids_all, rows_all))
        rows_all = rows_all[order]
        rids_all = rids_all[order]
        ts_list = ts_all[order].tolist()
        seg = np.concatenate(
            ([True], (rows_all[1:] != rows_all[:-1])
             | (rids_all[1:] != rids_all[:-1])))
        starts = np.nonzero(seg)[0]
        ends = np.append(starts[1:], rows_all.size)
        for lo, hi_s, lane, rid in zip(starts.tolist(), ends.tolist(),
                                       rows_all[starts].tolist(),
                                       rids_all[starts].tolist()):
            lane_scheds[lane][rid] = set(ts_list[lo:hi_s])

    if plane is not None:
        plane.finish()
        stats = plane.lane_stats()
    else:
        stats = None
    return [(lane_objs[i], lane_scheds[i], cap_count[i],
             stats[i] if stats is not None else (0, 0, 0))
            for i in range(L)]


# ----------------------------------------------------------------------
# Final accounting
# ----------------------------------------------------------------------

def _finalize(col: ColumnarInstance, lane: _Lane,
              sched: dict[int, set[int]], cap_count: np.ndarray,
              runtime: float,
              stats: tuple[int, int, int] = (0, 0, 0)) -> SimulationResult:
    complete = cap_count == col.st_size
    if col.n_inst > 1:
        complete = complete & (col.st_inst == lane.inst)
    captured_total = int(np.count_nonzero(complete))
    total = col.inst_sizes[lane.inst]

    profile_totals = col.profile_totals[lane.inst]
    max_pid = max(profile_totals, default=-1)
    p_hits = np.bincount(col.st_profile[complete], minlength=max_pid + 1) \
        if col.S else np.zeros(max_pid + 1, dtype=np.int64)
    per_profile = {pid: (int(p_hits[pid]) if pid < p_hits.size else 0,
                         tot)
                   for pid, tot in profile_totals.items()}

    rank_totals = col.rank_totals[lane.inst]
    max_size = max(rank_totals, default=0)
    r_hits = np.bincount(col.st_size[complete], minlength=max_size + 1) \
        if col.S else np.zeros(max_size + 1, dtype=np.int64)
    per_rank = {size: (int(r_hits[size]), tot)
                for size, tot in rank_totals.items()}

    report = CompletenessReport(
        captured=captured_total,
        total=total,
        per_profile=per_profile,
        per_rank=per_rank,
    )
    schedule = Schedule.from_grouped(sched)
    probes_failed, retries, quarantined = stats
    return SimulationResult(
        label=lane.policy.label(lane.preemptive),
        schedule=schedule,
        report=report,
        probes_used=len(schedule),
        expired=total - captured_total,
        runtime_seconds=runtime,
        probes_failed=probes_failed,
        retries=retries,
        resources_quarantined=quarantined,
    )
