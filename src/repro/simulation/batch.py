"""Columnar mega-batch simulation engine.

:func:`run_block` advances *many* fault-free online runs over one shared
instance — a whole policy lineup × every budget variant × every
repetition that maps to the same generated profiles — in a single
chronon-major vectorized loop. Each independent run is a **lane**: a
``(policy, preemptive, budget)`` triple with its own row in the
``(lanes, ...)`` state matrices (captured flags, per-state capture
counts, commitment and doom flags, M-EDF aggregates). One pass over the
instance's per-chronon activity CSR (see
:mod:`repro.simulation.columnar`) then serves every lane at once:

* candidate masks are boolean array ops over the chronon's activity
  slice;
* per-resource pool aggregation is a ``minimum.reduceat`` over packed
  int64 candidate keys (score, finish, start) — the reference engines'
  full lexicographic candidate order, including the ``(seq, ei_id)``
  tie-break, is encoded positionally, so an integer min IS the
  tie-broken best;
* resource ranking packs ``(score, finish, -pool, start, rid)`` into one
  int64 per (lane, resource) and selects each lane's ``C_j(T)`` smallest
  with one argsort/argpartition;
* non-preemptive lanes run the two-pool rule exactly: committed-state
  pools first, then fresh states for leftover budget;
* captures, budget decrements and the M-EDF sum/started aggregates are
  scatter-adds.

The engine is **schedule-identical** to
:class:`~repro.simulation.engine.FastProxySimulator` for every supported
policy (see ``tests/properties/test_prop_batch.py``): probe-for-probe,
report-for-report. Unsupported configurations — fault injection,
policies outside the known set, instances whose packed keys overflow —
raise :class:`~repro.simulation.columnar.BatchUnsupported`; callers fall
back to the fast engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.budget import BudgetVector
from repro.core.completeness import CompletenessReport
from repro.core.profile import ProfileSet
from repro.core.schedule import Schedule
from repro.core.timeline import Epoch
from repro.online.base import EI_LEVEL, Policy
from repro.online.baselines import (
    CoveragePolicy,
    FCFSPolicy,
    LeastFlexibleFirstPolicy,
    MostResidualFirstPolicy,
    StaticRankPolicy,
)
from repro.online.medf import MEDFPolicy
from repro.online.mrsf import MRSFPolicy
from repro.online.sedf import SEDFPolicy
from repro.simulation.columnar import (
    BatchUnsupported,
    ColumnarInstance,
    INF_KEY,
)
from repro.simulation.result import SimulationResult

__all__ = ["BatchUnsupported", "batch_kind", "run_block"]

#: Supported policy types -> static-key kind. Exact type match only:
#: subclasses may override scoring in ways the columnar keys don't model.
_KINDS = {
    SEDFPolicy: "sedf",
    FCFSPolicy: "fcfs",
    LeastFlexibleFirstPolicy: "lff",
    StaticRankPolicy: "srank",
    MRSFPolicy: "mrsf",
    MostResidualFirstPolicy: "anti",
    CoveragePolicy: "coverage",
    MEDFPolicy: "medf",
}

_DYNAMIC_KINDS = frozenset({"mrsf", "anti", "coverage", "medf"})


def batch_kind(policy: Policy) -> str | None:
    """The batch engine's kind tag for ``policy``, or None if unsupported."""
    if type(policy) in _KINDS:
        return _KINDS[type(policy)]
    return None


@dataclass(frozen=True)
class _Lane:
    policy: Policy
    preemptive: bool
    budget: BudgetVector
    inst: int
    kind: str
    sees_doom: bool


def _make_lanes(lanes: Sequence[tuple], n_inst: int) -> list[_Lane]:
    out: list[_Lane] = []
    for spec in lanes:
        if len(spec) == 4:
            policy, preemptive, budget, inst = spec
        else:
            policy, preemptive, budget = spec
            inst = 0
        kind = batch_kind(policy)
        if kind is None:
            raise BatchUnsupported(
                f"policy {policy.name!r} ({type(policy).__name__}) has no "
                "columnar scoring kind")
        if not 0 <= inst < n_inst:
            raise BatchUnsupported(
                f"lane instance {inst} out of range for {n_inst} instances")
        out.append(_Lane(policy, preemptive, budget, inst, kind,
                         policy.level != EI_LEVEL))
    return out


def run_block(
    profiles: ProfileSet | Sequence[ProfileSet],
    epoch: Epoch,
    lanes: Sequence[tuple],
    *,
    columnar: ColumnarInstance | None = None,
) -> list[SimulationResult]:
    """Run every lane over the shared column space in one vectorized pass.

    ``profiles`` is one :class:`ProfileSet` or a sequence of them (a mega
    block over several same-epoch instances, e.g. a sweep cell's
    repetitions). Each lane is ``(policy, preemptive, budget)`` — with an
    optional fourth element naming the lane's instance index — and gets
    one :class:`SimulationResult`, in lane order, identical to what
    ``FastProxySimulator(profiles[inst], epoch, budget, policy,
    preemptive).run()`` would produce. ``runtime_seconds`` is the block
    wall time split evenly across lanes (per-lane attribution is
    meaningless inside a shared pass).

    Raises :class:`BatchUnsupported` for policies without a columnar
    kind or instances whose packed keys overflow.
    """
    started = time.perf_counter()
    if columnar is not None:
        col = columnar
    elif isinstance(profiles, ProfileSet):
        col = ColumnarInstance.build(profiles, epoch)
    else:
        col = ColumnarInstance.build_many(profiles, epoch)
    lane_objs = _make_lanes(lanes, col.n_inst)
    L = len(lane_objs)
    probes = _advance(col, lane_objs) if L else []
    elapsed = time.perf_counter() - started
    per_lane = elapsed / L if L else 0.0
    return [_finalize(col, lane, lane_sched, lane_caps, per_lane)
            for lane, lane_sched, lane_caps in probes]


# ----------------------------------------------------------------------
# The chronon-major loop
# ----------------------------------------------------------------------

def _advance(col: ColumnarInstance, lane_objs: list[_Lane]):
    L = len(lane_objs)
    S, E = col.S, col.E
    lane_inst = np.array([ln.inst for ln in lane_objs], dtype=np.int64)
    # Capture state is kept *inverted* (alive = still uncaptured) so the
    # hot per-chronon gathers need no element-wise NOT. Foreign EIs
    # (other instances in a mega block) start dead: they can never
    # become candidates, never doom, never count — the whole
    # cross-instance separation in one init.
    alive = col.ei_inst[None, :] == lane_inst[:, None]
    cap_count = np.zeros((L, S), dtype=np.int64)
    # A state is committed exactly when it has ever yielded a capture
    # (the fault-free path never reaches the explicit commit hook), so
    # commitment is a *view* of cap_count — no separate scatter needed.
    # Doom flags (inverted, like alive) are only ever *cleared* for
    # lanes whose policy outranks the EI level (sees_doom); other rows
    # stay all-True, so one uniform mask works for every lane.
    undoomed = np.ones((L, S), dtype=bool)

    np_rows = np.array([i for i, ln in enumerate(lane_objs)
                        if not ln.preemptive], dtype=np.int64)
    doom_rows = np.array([i for i, ln in enumerate(lane_objs)
                          if ln.sees_doom], dtype=np.int64)
    kind_rows: dict[str, np.ndarray] = {}
    for kind in dict.fromkeys(ln.kind for ln in lane_objs):
        kind_rows[kind] = np.array(
            [i for i, ln in enumerate(lane_objs) if ln.kind == kind],
            dtype=np.int64)
    medf_rows = kind_rows.get("medf")
    need_medf = medf_rows is not None
    if need_medf:
        capsum = np.zeros((L, S), dtype=np.int64)
        capsum_flat = capsum.reshape(-1)
        is_medf = np.zeros(L, dtype=bool)
        is_medf[medf_rows] = True
    cap_flat = cap_count.reshape(-1)

    n_act = col.act_chronons.size
    # Per-lane budget for each *active* chronon; inactive chronons have
    # no candidates, so their budget can never be spent.
    budgets = np.empty((L, n_act), dtype=np.int64)
    for i, ln in enumerate(lane_objs):
        if ln.budget.is_constant():
            budgets[i] = ln.budget.default
        else:
            budgets[i] = [ln.budget.at(int(T)) for T in col.act_chronons]

    fs_bits = col.fs_bits
    n_max = col.n_max
    medf_off = col.medf_off
    hi2d = np.empty((L, 0), dtype=np.int64)
    lane_col = np.arange(L)[:, None]
    g_max = int(np.diff(col.grp_indptr).max()) if n_act else 0
    col_idx = np.arange(max(g_max, 1), dtype=np.int64)
    # Scalar per-chronon reads go through plain Python lists — ndarray
    # scalar indexing costs several times more in the hot loop.
    kmax_per_t = budgets.max(axis=0).tolist()
    act_chronons = col.act_chronons.tolist()
    act_indptr = col.act_indptr.tolist()
    act_e = col.act_e
    ps_act = col.ps_act
    grp_indptr = col.grp_indptr.tolist()
    grp_starts = col.grp_starts
    grp_rid = col.grp_rid
    grp_of_flat = col.grp_of
    finstart_flat = col.finstart_act
    hi_static = col.hi_static
    started_flat = col.started_act
    init_flat = col.init_sum_act
    fin_flat = col.fin_act
    resource_key = col.resource_key

    # (chronon, lane rows, resource ids) per chronon with probes; grouped
    # into per-lane schedules once after the loop.
    probe_log: list[tuple[int, np.ndarray, np.ndarray]] = []
    xe_ti = 0
    n_xe = col.xe_chronons.size if doom_rows.size else 0
    xe_chronons = col.xe_chronons.tolist()
    xe_indptr = col.xe_indptr.tolist()
    xg_indptr = col.xg_indptr.tolist()
    doom_col = doom_rows[:, None]

    for ti in range(n_act):
        T = act_chronons[ti]

        # Expiry events: flush everything due by T. Captured status is
        # frozen once an EI's window closes, so deferring an expiry from
        # a quiet chronon to the next active one is exact. (With no
        # doom-sensitive lane n_xe is 0 and the flush never runs.)
        while xe_ti < n_xe and xe_chronons[xe_ti] <= T:
            lo = xe_indptr[xe_ti]
            hi = xe_indptr[xe_ti + 1]
            glo2 = xg_indptr[xe_ti]
            ghi2 = xg_indptr[xe_ti + 1]
            xe_ti += 1
            xe = col.xe_e[lo:hi]
            misses = alive[doom_col, xe[None, :]]
            # OR-reduce to one column per state before the fancy &=:
            # duplicate targets in a buffered assign would be lossy.
            seg = col.xg_starts[glo2:ghi2] - lo
            if seg.size != xe.size:
                misses = np.logical_or.reduceat(misses, seg, axis=1)
            undoomed[doom_col, col.xg_state[glo2:ghi2][None, :]] &= ~misses

        kmax = kmax_per_t[ti]
        if kmax <= 0:
            continue
        k_arr = budgets[:, ti]

        alo = act_indptr[ti]
        ahi = act_indptr[ti + 1]
        A = ahi - alo
        ae = act_e[alo:ahi]
        ps = ps_act[alo:ahi]
        glo = grp_indptr[ti]
        ghi = grp_indptr[ti + 1]
        G = ghi - glo
        gs_local = grp_starts[glo:ghi] - alo
        grids = grp_rid[glo:ghi]
        grp_of = grp_of_flat[alo:ahi]
        finstart = finstart_flat[alo:ahi]

        cand = alive[:, ae]
        if doom_rows.size:
            cand &= undoomed[:, ps]
        if not cand.any():
            continue

        # Per-lane candidate keys (score, finish, start) packed int64.
        if hi2d.shape[1] < A:
            hi2d = np.empty((L, A), dtype=np.int64)
        hi = hi2d[:, :A]
        for kind, rows in kind_rows.items():
            if kind not in _DYNAMIC_KINDS:
                hi[rows] = hi_static[kind][alo:ahi]
            elif kind == "mrsf":
                capg = cap_count[rows[:, None], ps[None, :]]
                hi[rows] = (hi_static["srank"][alo:ahi]
                            - (capg << fs_bits))
            elif kind == "anti":
                capg = cap_count[rows[:, None], ps[None, :]]
                hi[rows] = (hi_static["anti"][alo:ahi]
                            + (capg << fs_bits))
            elif kind == "coverage":
                # Coverage scores -len(pool) over the *full* candidate
                # index (both NP pools), offset to n_max - len(pool).
                n_tot = np.add.reduceat(
                    cand[rows], gs_local, axis=1).astype(np.int64)
                hi[rows] = (((n_max - n_tot[:, grp_of]) << fs_bits)
                            + finstart)
            elif kind == "medf":
                rc = rows[:, None]
                pc = ps[None, :]
                # Lane-independent part first (A-sized, not lanes x A).
                base = (init_flat[alo:ahi] + medf_off
                        - T * started_flat[alo:ahi])
                score = (base - capsum[rc, pc]) + T * cap_count[rc, pc]
                hi[rows] = (score << fs_bits) + finstart
            else:  # pragma: no cover - _make_lanes already screened kinds
                raise BatchUnsupported(f"unknown kind {kind!r}")

        # Phase 1 pools: preemptive lanes see every candidate;
        # non-preemptive lanes only candidates of committed states.
        if np_rows.size:
            comm_np = cap_count[np_rows[:, None], ps[None, :]] > 0
            pool = cand.copy()
            pool[np_rows] &= comm_np
        else:
            pool = cand

        masked = np.where(pool, hi, INF_KEY)
        best = np.minimum.reduceat(masked, gs_local, axis=1)
        pool_n = np.add.reduceat(pool, gs_local, axis=1).astype(np.int64)
        res_key = resource_key(best, pool_n, grids)

        # Each lane takes its k_l smallest rank keys; INF_KEY (empty
        # pool) sorts last, so the first k_l valid slots of the sorted
        # order are exactly the fast engine's nsmallest picks. A full
        # argsort beats the argpartition + small-sort chain until G is
        # well into the hundreds (measured crossover ~200).
        take = min(kmax, G)
        if G <= 192:
            order = np.argsort(res_key, axis=1)[:, :take]
        else:
            part = np.argpartition(res_key, take - 1, axis=1)[:, :take]
            order = part[lane_col, np.argsort(res_key[lane_col, part],
                                              axis=1)]
        ranked = res_key[lane_col, order]
        sel = (ranked != INF_KEY) & (col_idx[:take][None, :]
                                     < k_arr[:, None])
        picks = np.zeros((L, G), dtype=bool)
        rr, cc = np.nonzero(sel)
        gids = order[rr, cc]
        picks[rr, gids] = True
        pr_rows, pr_gs = rr, gids

        # Phase 2: non-preemptive lanes spend leftover budget on fresh
        # (uncommitted) states, excluding already-probed resources.
        if np_rows.size:
            d1 = sel.sum(axis=1)
            left = ((k_arr[np_rows] > d1[np_rows])
                    & (k_arr[np_rows] > 0))
            rows2 = np_rows[left]
        else:
            rows2 = np_rows
        if rows2.size:
            pool2 = cand[rows2] & ~comm_np[left]
            masked2 = np.where(pool2, hi[rows2], INF_KEY)
            best2 = np.minimum.reduceat(masked2, gs_local, axis=1)
            n2 = np.add.reduceat(pool2, gs_local, axis=1).astype(np.int64)
            key2 = resource_key(best2, n2, grids)
            key2[picks[rows2]] = INF_KEY
            need = k_arr[rows2] - d1[rows2]
            nmax2 = int(need.max())
            take2 = min(nmax2, G)
            row2_col = np.arange(rows2.size)[:, None]
            if G <= 192:
                order2 = np.argsort(key2, axis=1)[:, :take2]
            else:
                part2 = np.argpartition(key2, take2 - 1,
                                        axis=1)[:, :take2]
                order2 = part2[row2_col,
                               np.argsort(key2[row2_col, part2], axis=1)]
            ranked2 = key2[row2_col, order2]
            sel2 = (ranked2 != INF_KEY) & (col_idx[:take2][None, :]
                                           < need[:, None])
            rr2, cc2 = np.nonzero(sel2)
            gids2 = order2[rr2, cc2]
            picks[rows2[rr2], gids2] = True
            pr_rows = np.concatenate((pr_rows, rows2[rr2]))
            pr_gs = np.concatenate((pr_gs, gids2))

        # Captures: a probed resource yields *every* candidate on it.
        if pr_rows.size == 0:
            continue
        probe_log.append((T, pr_rows, grids[pr_gs]))
        er, ec = np.nonzero(cand & picks[:, grp_of])
        alive[er, ae[ec]] = False
        flat = er * S + ps[ec]
        np.add.at(cap_flat, flat, 1)
        if need_medf:
            m = is_medf[er]
            np.add.at(capsum_flat, flat[m], fin_flat[alo:ahi][ec[m]])

    # Group the probe log into per-lane, per-resource chronon sets — the
    # exact shape Schedule stores. Insertion order is irrelevant:
    # Schedule.probes() sorts by (chronon, resource).
    lane_scheds: list[dict[int, set[int]]] = [{} for _ in range(L)]
    if probe_log:
        rows_all = np.concatenate([r for _, r, _ in probe_log])
        rids_all = np.concatenate([g for _, _, g in probe_log])
        ts_all = np.concatenate(
            [np.full(r.size, t, dtype=np.int64) for t, r, _ in probe_log])
        # Undo the per-instance resource-id offset before reporting.
        rids_all = rids_all - lane_inst[rows_all] * col.rid_stride
        order = np.lexsort((rids_all, rows_all))
        rows_all = rows_all[order]
        rids_all = rids_all[order]
        ts_list = ts_all[order].tolist()
        seg = np.concatenate(
            ([True], (rows_all[1:] != rows_all[:-1])
             | (rids_all[1:] != rids_all[:-1])))
        starts = np.nonzero(seg)[0]
        ends = np.append(starts[1:], rows_all.size)
        for lo, hi_s, lane, rid in zip(starts.tolist(), ends.tolist(),
                                       rows_all[starts].tolist(),
                                       rids_all[starts].tolist()):
            lane_scheds[lane][rid] = set(ts_list[lo:hi_s])

    return [(lane_objs[i], lane_scheds[i], cap_count[i]) for i in range(L)]


# ----------------------------------------------------------------------
# Final accounting
# ----------------------------------------------------------------------

def _finalize(col: ColumnarInstance, lane: _Lane,
              sched: dict[int, set[int]], cap_count: np.ndarray,
              runtime: float) -> SimulationResult:
    complete = cap_count == col.st_size
    if col.n_inst > 1:
        complete = complete & (col.st_inst == lane.inst)
    captured_total = int(np.count_nonzero(complete))
    total = col.inst_sizes[lane.inst]

    profile_totals = col.profile_totals[lane.inst]
    max_pid = max(profile_totals, default=-1)
    p_hits = np.bincount(col.st_profile[complete], minlength=max_pid + 1) \
        if col.S else np.zeros(max_pid + 1, dtype=np.int64)
    per_profile = {pid: (int(p_hits[pid]) if pid < p_hits.size else 0,
                         tot)
                   for pid, tot in profile_totals.items()}

    rank_totals = col.rank_totals[lane.inst]
    max_size = max(rank_totals, default=0)
    r_hits = np.bincount(col.st_size[complete], minlength=max_size + 1) \
        if col.S else np.zeros(max_size + 1, dtype=np.int64)
    per_rank = {size: (int(r_hits[size]), tot)
                for size, tot in rank_totals.items()}

    report = CompletenessReport(
        captured=captured_total,
        total=total,
        per_profile=per_profile,
        per_rank=per_rank,
    )
    schedule = Schedule.from_grouped(sched)
    return SimulationResult(
        label=lane.policy.label(lane.preemptive),
        schedule=schedule,
        report=report,
        probes_used=len(schedule),
        expired=total - captured_total,
        runtime_seconds=runtime,
    )
