"""Event-indexed fast simulation engine.

:class:`FastProxySimulator` computes exactly the same
:class:`~repro.simulation.result.SimulationResult` as the reference
:class:`~repro.simulation.proxy.ProxySimulator` — probe for probe,
including under fault injection, retries and the circuit breaker — while
replacing the reference's per-chronon rescans with incremental
maintenance:

* **Event queues** (built once at :meth:`run` entry) bucket every state
  arrival, EI window opening (start) and EI window closing (expiry) by
  chronon, so a chronon only touches what actually changed instead of
  re-scanning the whole active set.
* **A per-resource candidate index** maps each resource to its currently
  probeable (state, EI) pairs, updated only on arrival, start, expiry,
  capture and doom events. The reference's candidate bag at any chronon
  is exactly: arrived, uncaptured, window open now, parent not complete,
  and — for rank/multi-EI-level policies — parent not doomed; all five
  conditions change only at events.
* **Cached selection** for chronon-shift-invariant policies (S-EDF,
  MRSF, FCFS, LFF, StaticRank, anti-MRSF, Coverage): each resource
  caches its best candidate key in *absolute* form (deadline instead of
  deadline-minus-chronon). Because every candidate's score shifts by the
  same amount per chronon (or not at all), absolute keys rank resources
  identically to the reference's relative keys, and a resource is
  re-scored only when an event dirtied it. M-EDF scores change
  non-uniformly across candidates, so it is re-scored every chronon —
  but in O(1) per candidate via per-state aggregates instead of the
  reference's O(rank) sum.

Equivalence of tie-breaking: the reference resolves full score ties by
candidate list position (``min`` keeps the first). The reference list is
ordered by (arrival order, EI id), so extending the fast engine's min key
with ``(seq, ei_id)`` — where ``seq`` numbers states in arrival order —
reproduces the reference's choice exactly. Final accounting needs no
per-chronon bookkeeping: a t-interval is counted captured iff it is
complete when the epoch ends, expired otherwise, which is provably what
the reference's retire/flush counting computes.

Policies not recognised (e.g. :class:`RandomPolicy`, custom subclasses)
fall back to a generic path that still benefits from the index: the flat
candidate list is materialised from it in reference order and handed to
:func:`~repro.online.base.select_probes`.

Custom ``state_factory`` states are supported under the two contracts the
provided states satisfy: ``is_complete`` may flip (to True) only on
``mark_captured``, and ``is_expired`` may flip (to True) only when an
uncaptured EI's deadline passes.

**Live churn.** :meth:`FastProxySimulator.add_profile` and
:meth:`~FastProxySimulator.remove_profile` register and cancel whole
profiles *mid-epoch*: an insert splices each new EI's start/expiry events
into the per-chronon event queues and (if already open) patches the
per-resource candidate index through the existing dirty-set rescoring —
O(log n + touched entries) per churn event, no rebuild. A remove retires
the state's live index entries and freezes it out of future events.
Arrival and accounting semantics mirror
:class:`~repro.runtime.proxy.MonitoringProxy`: a profile registered at
clock ``T`` participates from chronon ``T + 1``; a cancelled t-interval
counts as *expired* if it was already doomed when cancelled (its missed
deadline was observable), *dropped* otherwise. ``run(churn=...)`` applies
a plan of such events between chronons; ``churn_rebuild=True`` instead
calls :meth:`~FastProxySimulator.rebuild_structures` after every event —
the from-scratch referee the incremental path is property-tested against.
"""

from __future__ import annotations

import heapq
import time
from collections import defaultdict

from repro.core.budget import BudgetVector
from repro.core.completeness import CompletenessReport
from repro.core.errors import ModelError
from repro.core.profile import Profile, ProfileSet
from repro.core.schedule import Schedule
from repro.core.timeline import Chronon, Epoch
from repro.faults.breaker import CircuitBreaker, RetryConfig
from repro.faults.engine import execute_probes
from repro.faults.model import OK_DECISION, FaultInjector, FaultSpec
from repro.online.base import (
    EI_LEVEL,
    Candidate,
    Policy,
    ProbeDecision,
    TIntervalState,
    select_probes,
)
from repro.online.baselines import (
    CoveragePolicy,
    FCFSPolicy,
    LeastFlexibleFirstPolicy,
    MostResidualFirstPolicy,
    StaticRankPolicy,
)
from repro.online.medf import MEDFPolicy
from repro.online.mrsf import MRSFPolicy
from repro.online.sedf import SEDFPolicy
from repro.simulation.result import SimulationResult

__all__ = ["FastProxySimulator"]

#: ``_FastState.removed`` markers. A state cancelled before any of its
#: deadlines passed is *dropped*; one whose doom was already observable
#: at cancel time is *expired* — the same split
#: :meth:`MonitoringProxy._begin_step` makes for inactive states.
_REMOVED_DROPPED = 1
_REMOVED_EXPIRED = 2


class _FastState:
    """Per-t-interval bookkeeping of the fast engine.

    ``seq`` numbers states in the reference's active-list order (arrival
    chronon, then creation order), which the tie-break keys rely on.
    ``medf_sum``/``medf_started`` are the M-EDF aggregates: the sum of
    deadlines over uncaptured EIs and the number of uncaptured EIs whose
    window has opened — the M-EDF score at chronon T is
    ``medf_sum - T * medf_started``, exactly (all quantities are small
    integers, so float arithmetic is exact).
    """

    __slots__ = ("state", "seq", "arrival", "doomed", "removed",
                 "medf_sum", "medf_started", "pid", "tid")

    def __init__(self, state: TIntervalState, seq: int,
                 arrival: Chronon) -> None:
        self.state = state
        self.seq = seq
        self.arrival = arrival
        self.doomed = False
        self.removed = 0
        self.medf_sum = 0
        self.medf_started = 0
        # Tie-break identity, cached off the eta to keep the scoring
        # loops free of attribute chains.
        self.pid = state.eta.profile_id
        self.tid = state.eta.tinterval_id


# Chronon-shift-invariant scorers in absolute form: scorer(fs, ei, T)
# returns a value whose ordering over candidates equals the ordering of
# the policy's true scores at any fixed chronon T. For S-EDF and LFF the
# true score is (absolute value - T): subtracting the same T from every
# candidate preserves order exactly. MRSF-family scores are
# chronon-independent but change on captures of the parent state.
_ABS_SCORERS = {
    SEDFPolicy: lambda fs, ei, T: float(ei.finish),
    FCFSPolicy: lambda fs, ei, T: float(ei.start),
    # Candidates are active (start <= T), so LFF's remaining width is
    # finish - T + 1 for every one of them.
    LeastFlexibleFirstPolicy: lambda fs, ei, T: float(ei.finish + 1),
    StaticRankPolicy: lambda fs, ei, T: float(fs.state.profile_rank),
    MRSFPolicy: lambda fs, ei, T: float(
        fs.state.profile_rank - fs.state.captured_count),
    MostResidualFirstPolicy: lambda fs, ei, T: -float(
        fs.state.profile_rank - fs.state.captured_count),
}

#: Policies whose cached resource keys go stale when a parent state's
#: captured count changes.
_CAPTURE_SENSITIVE = (MRSFPolicy, MostResidualFirstPolicy)


class FastProxySimulator:
    """Drop-in fast replacement for :class:`ProxySimulator`.

    Accepts the same constructor arguments and produces an identical
    :class:`SimulationResult` (up to ``runtime_seconds``, which measures
    this engine's own wall time).
    """

    def __init__(self, profiles: ProfileSet, epoch: Epoch,
                 budget: BudgetVector, policy: Policy,
                 preemptive: bool = True,
                 state_factory=TIntervalState,
                 faults: FaultSpec | None = None,
                 retry: RetryConfig | None = None,
                 breaker: CircuitBreaker | None = None) -> None:
        self.profiles = profiles
        self.epoch = epoch
        self.budget = budget
        self.policy = policy
        self.preemptive = preemptive
        self.state_factory = state_factory
        if isinstance(faults, FaultSpec):
            faults = FaultInjector(faults, record=False)
        self.injector = faults
        self.retry = retry
        self.breaker = breaker

        # Selection mode: cached absolute keys, per-chronon M-EDF
        # rescoring, or the generic fallback. Exact type match only —
        # subclasses may override score() arbitrarily.
        kind = type(policy)
        self._scorer = _ABS_SCORERS.get(kind)
        self._coverage = kind is CoveragePolicy
        self._medf = kind is MEDFPolicy
        self._fast_mode = (self._scorer is not None or self._coverage
                           or self._medf)
        self._capture_dirty = self._fast_mode and isinstance(
            policy, _CAPTURE_SENSITIVE)
        # NP mode pools depend on committed flags, so flips dirty caches.
        self._commit_dirty = self._fast_mode and not preemptive

        # rid -> {(seq, ei_id) -> (fs, ei, Candidate)}
        self._index: dict[int, dict[tuple[int, int], tuple]] = {}
        # Ready-made selection triples (rank_key, rid, best_candidate),
        # one per resource with a non-empty pool, rebuilt only when the
        # resource is dirtied: in preemptive mode ``_cache`` holds the
        # single pool; in NP mode ``_cache`` is the committed pool and
        # ``_cache2`` the fresh pool.
        self._cache: dict[int, tuple] = {}
        self._cache2: dict[int, tuple] = {}
        self._dirty: set[int] = set()
        self._fs_by_key: dict[tuple[int, int], _FastState] = {}

        self._sees_doom = policy.level != EI_LEVEL
        self._fault_aware = (self.injector is not None
                             or self.breaker is not None
                             or self.retry is not None)
        self._begun = False

    # ------------------------------------------------------------------
    # Candidate index maintenance
    # ------------------------------------------------------------------

    def _add_entry(self, fs: _FastState, ei) -> None:
        rid = ei.resource_id
        entries = self._index.get(rid)
        if entries is None:
            entries = {}
            self._index[rid] = entries
        entries[(fs.seq, ei.ei_id)] = (fs, ei, Candidate(fs.state, ei))
        if self._fast_mode:
            self._dirty.add(rid)

    def _remove_entry(self, fs: _FastState, ei) -> None:
        rid = ei.resource_id
        entries = self._index.get(rid)
        if entries is None:
            return
        if entries.pop((fs.seq, ei.ei_id), None) is None:
            return
        if entries:
            if self._fast_mode:
                self._dirty.add(rid)
        else:
            del self._index[rid]
            self._cache.pop(rid, None)
            self._cache2.pop(rid, None)
            self._dirty.discard(rid)

    def _remove_state_entries(self, fs: _FastState) -> None:
        """Drop every remaining index entry of one t-interval."""
        captured = fs.state.captured
        for ei in fs.state.eta:
            if not captured[ei.ei_id]:
                self._remove_entry(fs, ei)

    def _dirty_state_entries(self, fs: _FastState) -> None:
        """Mark resources holding this state's entries for re-scoring."""
        seq = fs.seq
        index = self._index
        for ei in fs.state.eta:
            entries = index.get(ei.resource_id)
            if entries and (seq, ei.ei_id) in entries:
                self._dirty.add(ei.resource_id)

    # ------------------------------------------------------------------
    # Cached selection
    # ------------------------------------------------------------------

    def _recompute(self, rid: int, entries: dict, chronon: Chronon) -> None:
        """Rebuild one resource's ready-made selection triple(s).

        The per-entry key extends the reference's (score, deadline,
        start, resource, profile, t-interval) comparison with (seq,
        ei_id), so a full tie resolves to the entry that comes first in
        the reference's candidate list — reproducing ``min``'s
        first-wins behaviour exactly. The stored triple's rank key
        mirrors the reference's resource ranking: (best score, best
        deadline, -pool size, best tie-break). Score and deadline shift
        uniformly with the chronon across resources, so comparing the
        absolute forms ranks identically.
        """
        scorer = self._scorer
        coverage_score = -float(len(entries)) if self._coverage else None
        medf = self._medf
        if self.preemptive:
            best = None
            best_cand = None
            for (seq, ei_id), (fs, ei, cand) in entries.items():
                if medf:
                    score = float(fs.medf_sum - chronon * fs.medf_started)
                elif coverage_score is not None:
                    score = coverage_score
                else:
                    score = scorer(fs, ei, chronon)
                key = (score, ei.finish, ei.start, rid,
                       fs.pid, fs.tid, seq, ei_id)
                if best is None or key < best:
                    best = key
                    best_cand = cand
            self._cache[rid] = (
                (best[0], best[1], -len(entries), best[2], best[3],
                 best[4], best[5]), rid, best_cand)
            return
        best_c = best_f = None
        cand_c = cand_f = None
        n_c = n_f = 0
        for (seq, ei_id), (fs, ei, cand) in entries.items():
            if medf:
                score = float(fs.medf_sum - chronon * fs.medf_started)
            elif coverage_score is not None:
                score = coverage_score
            else:
                score = scorer(fs, ei, chronon)
            key = (score, ei.finish, ei.start, rid,
                   fs.pid, fs.tid, seq, ei_id)
            if fs.state.committed:
                n_c += 1
                if best_c is None or key < best_c:
                    best_c, cand_c = key, cand
            else:
                n_f += 1
                if best_f is None or key < best_f:
                    best_f, cand_f = key, cand
        if best_c is not None:
            self._cache[rid] = (
                (best_c[0], best_c[1], -n_c, best_c[2], best_c[3],
                 best_c[4], best_c[5]), rid, cand_c)
        else:
            self._cache.pop(rid, None)
        if best_f is not None:
            self._cache2[rid] = (
                (best_f[0], best_f[1], -n_f, best_f[2], best_f[3],
                 best_f[4], best_f[5]), rid, cand_f)
        else:
            self._cache2.pop(rid, None)

    def _select_fast(self, chronon: Chronon,
                     budget: int) -> list[ProbeDecision]:
        index = self._index
        if self._medf:
            # M-EDF scores drift non-uniformly with the chronon: rescore
            # everything (O(1) per candidate via the state aggregates).
            for rid, entries in index.items():
                self._recompute(rid, entries, chronon)
            self._dirty.clear()
        elif self._dirty:
            for rid in self._dirty:
                entries = index.get(rid)
                if entries:
                    self._recompute(rid, entries, chronon)
            self._dirty.clear()

        breaker = self.breaker
        blocked = None
        if breaker is not None:
            blocked = {rid for rid in index
                       if breaker.is_blocked(rid, chronon)}
            if len(blocked) == len(index):
                return []
        cache = self._cache

        # After the refresh above, cache keys track index keys exactly
        # (every index mutation dirties or evicts), so the pools are the
        # cached triples themselves — no per-chronon key building.
        if self.preemptive:
            if not blocked:
                pool = cache.values()
            else:
                pool = [triple for rid, triple in cache.items()
                        if rid not in blocked]
            return [ProbeDecision(rid, cand)
                    for _k, rid, cand in heapq.nsmallest(budget, pool)]

        decisions: list[ProbeDecision] = []
        chosen: set[int] = set()
        if not blocked:
            pool = cache.values()
        else:
            pool = [triple for rid, triple in cache.items()
                    if rid not in blocked]
        for _k, rid, cand in heapq.nsmallest(budget, pool):
            decisions.append(ProbeDecision(rid, cand))
            chosen.add(rid)
        if len(decisions) < budget:
            needed = budget - len(decisions) + len(chosen)
            cache2 = self._cache2
            if not blocked:
                pool2 = cache2.values()
            else:
                pool2 = [triple for rid, triple in cache2.items()
                         if rid not in blocked]
            for _k, rid, cand in heapq.nsmallest(needed, pool2):
                if rid in chosen:
                    continue
                if len(decisions) >= budget:
                    break
                decisions.append(ProbeDecision(rid, cand))
                chosen.add(rid)
        return decisions

    def _select_generic(self, chronon: Chronon,
                        budget: int) -> list[ProbeDecision]:
        """Fallback for unrecognised policies: index -> flat candidates.

        The list is ordered by (seq, ei_id) — the reference's candidate
        order — and handed to the shared selection code, so arbitrary
        Policy subclasses (stateful hooks included) behave identically.
        """
        items: list[tuple[tuple[int, int], tuple]] = []
        for entries in self._index.values():
            items.extend(entries.items())
        items.sort(key=lambda kv: kv[0])
        candidates = [kv[1][2] for kv in items]
        breaker = self.breaker
        if breaker is not None:
            blocked = {rid for rid in self._index
                       if breaker.is_blocked(rid, chronon)}
            if blocked:
                candidates = [c for c in candidates
                              if c.ei.resource_id not in blocked]
        if not candidates:
            return []
        self.policy.observe_candidates(candidates, chronon)
        return select_probes(self.policy, candidates, chronon, budget,
                             self.preemptive)

    # ------------------------------------------------------------------
    # Captures
    # ------------------------------------------------------------------

    def _apply_captures(self, probed: list[int], chronon: Chronon) -> None:
        """Capture every candidate EI on the probed resources.

        Mirrors :func:`~repro.online.base.apply_probes`: all probed
        entries are captured (even if a capture completes their
        t-interval mid-loop), then completed t-intervals have their
        remaining uncaptured entries retired from the index (relevant
        for quota-style states that complete early).
        """
        popped: list[dict] = []
        for rid in probed:
            entries = self._index.pop(rid, None)
            if not entries:
                continue
            self._cache.pop(rid, None)
            self._cache2.pop(rid, None)
            self._dirty.discard(rid)
            popped.append(entries)
        completed: list[_FastState] = []
        for entries in popped:
            for fs, ei, _cand in entries.values():
                state = fs.state
                state.mark_captured(ei.ei_id)
                fs.medf_sum -= ei.finish
                fs.medf_started -= 1
                flipped = not state.committed
                state.committed = True
                if (self._capture_dirty
                        or (flipped and self._commit_dirty)):
                    self._dirty_state_entries(fs)
                if state.is_complete:
                    completed.append(fs)
        for fs in completed:
            self._remove_state_entries(fs)

    def _commit(self, state: TIntervalState) -> None:
        """Commit a selected t-interval (probe issued, even if failed)."""
        if not state.committed:
            state.committed = True
            if self._commit_dirty:
                self._dirty_state_entries(self._fs_by_key[state.key])

    # ------------------------------------------------------------------
    # Main loop: begin / advance / finish
    # ------------------------------------------------------------------

    @property
    def clock(self) -> Chronon:
        """Last chronon advanced (0 before the first)."""
        return self._clock

    def begin(self) -> None:
        """Build event queues and numbering; ready the chronon loop."""
        if self._begun:
            raise ModelError("FastProxySimulator.begin() called twice")
        self._begun = True
        self._started_at = time.perf_counter()
        last = self.epoch.last

        # Bucket states by arrival (clamped like the reference so that
        # past-epoch t-intervals are still counted), then number them in
        # the reference's active-list order.
        buckets: dict[Chronon, list[TIntervalState]] = {}
        for profile in self.profiles:
            rank = profile.rank
            for eta in profile:
                state = self.state_factory(eta, rank)
                arrival = min(eta.earliest_start, last)
                buckets.setdefault(arrival, []).append(state)

        # Start events cover both cases of an EI becoming probeable: its
        # window was already open when the state arrived (event at the
        # arrival chronon), or it opens later (event at ei.start). The
        # single handler keeps their semantics identical.
        start_events: dict[Chronon, list[tuple[_FastState, object]]] = \
            defaultdict(list)
        expiry_events: dict[Chronon, list[tuple[_FastState, object]]] = \
            defaultdict(list)
        all_states: list[_FastState] = []
        states_by_profile: dict[int, list[_FastState]] = defaultdict(list)
        seq = 0
        for arrival in sorted(buckets):
            for state in buckets[arrival]:
                fs = _FastState(state, seq, arrival)
                seq += 1
                all_states.append(fs)
                self._fs_by_key[state.key] = fs
                states_by_profile[state.eta.profile_id].append(fs)
                for ei in state.eta:
                    fs.medf_sum += ei.finish
                    start = ei.start
                    if start <= arrival:
                        start_events[arrival].append((fs, ei))
                    elif start <= last:
                        start_events[start].append((fs, ei))
                    if ei.finish < last:
                        expiry_events[ei.finish + 1].append((fs, ei))

        self._start_events = start_events
        self._expiry_events = expiry_events
        self._all_states = all_states
        self._states_by_profile = states_by_profile
        self._seq = seq
        self._clock: Chronon = 0
        self._next_profile_id = len(self.profiles)
        self._extra_profiles: list[Profile] = []
        self._churned = False
        self._schedule = Schedule()
        self._probes_failed = 0
        self._retries = 0
        self._select = self._select_fast if self._fast_mode \
            else self._select_generic

    def advance(self, chronon: Chronon) -> None:
        """Process one chronon: events, selection, probes, captures."""
        self._clock = chronon
        sees_doom = self._sees_doom
        starts = self._start_events.get(chronon)
        if starts is not None:
            for fs, ei in starts:
                if fs.removed:
                    continue
                state = fs.state
                if state.captured[ei.ei_id]:
                    continue
                fs.medf_started += 1
                if state.is_complete:
                    continue  # quota-complete: no longer a candidate
                if sees_doom and fs.doomed:
                    continue
                self._add_entry(fs, ei)
        expiries = self._expiry_events.get(chronon)
        if expiries is not None:
            for fs, ei in expiries:
                if fs.removed:
                    continue
                state = fs.state
                if state.captured[ei.ei_id]:
                    continue
                self._remove_entry(fs, ei)
                # An uncaptured EI just crossed its deadline — the
                # only instant at which a state can become doomed.
                if (not fs.doomed and not state.is_complete
                        and state.is_expired(chronon)):
                    fs.doomed = True
                    if sees_doom:
                        self._remove_state_entries(fs)

        budget_now = self.budget.at(chronon)
        if budget_now <= 0 or not self._index:
            return
        decisions = self._select(chronon, budget_now)
        if not decisions:
            return

        if not self._fault_aware:
            for decision in decisions:
                self._schedule.add_probe(decision.resource_id, chronon)
            self._apply_captures(
                [d.resource_id for d in decisions], chronon)
            return

        injector = self.injector
        if injector is not None:
            injector.begin_chronon(chronon)
        round_ = execute_probes(
            decisions, chronon, budget_now, self._prober(chronon),
            retry=self.retry, breaker=self.breaker)
        self._probes_failed += round_.failures
        self._retries += round_.retries
        ok_rids = []
        for decision in decisions:
            # Selection commits the t-interval even when the request
            # fails (budget was spent on it), like the reference.
            self._commit(decision.selected.state)
            if decision.resource_id in round_.outcomes:
                ok_rids.append(decision.resource_id)
                self._schedule.add_probe(decision.resource_id, chronon)
        self._apply_captures(ok_rids, chronon)

    def finish(self) -> SimulationResult:
        """Close the epoch: per-t-interval accounting and the result.

        The reference counts each t-interval exactly once — captured
        when it completes, expired at doom time or at the end-of-epoch
        flush — which reduces to: captured iff complete when the epoch
        ends. Cancelled states carry their classification in
        ``fs.removed`` (expired if already doomed at cancel time,
        dropped otherwise), mirroring the proxy's unregister accounting.
        """
        captured_total = 0
        expired_total = 0
        dropped_total = 0
        per_profile: dict[int, tuple[int, int]] = {
            profile.profile_id: (0, len(profile))
            for profile in self.profiles
        }
        per_rank: dict[int, tuple[int, int]] = {}
        total_tintervals = self.profiles.total_tintervals
        for eta in self.profiles.tintervals():
            captured, total = per_rank.get(eta.size, (0, 0))
            per_rank[eta.size] = (captured, total + 1)
        for profile in self._extra_profiles:
            per_profile[profile.profile_id] = (0, len(profile))
            total_tintervals += len(profile)
            for eta in profile:
                captured, total = per_rank.get(eta.size, (0, 0))
                per_rank[eta.size] = (captured, total + 1)
        for fs in self._all_states:
            state = fs.state
            if fs.removed:
                hit = False
                if fs.removed == _REMOVED_EXPIRED:
                    expired_total += 1
                else:
                    dropped_total += 1
            else:
                hit = state.is_complete
                if hit:
                    captured_total += 1
                else:
                    expired_total += 1
            profile_id = state.eta.profile_id
            hits, total = per_profile.get(profile_id, (0, 0))
            per_profile[profile_id] = (hits + int(hit), total)
            rank_hits, rank_total = per_rank[state.eta.size]
            per_rank[state.eta.size] = (rank_hits + int(hit), rank_total)

        runtime = time.perf_counter() - self._started_at
        report = CompletenessReport(
            captured=captured_total,
            total=total_tintervals,
            per_profile=per_profile,
            per_rank=per_rank,
        )
        extras: dict[str, float] = {}
        if self._churned:
            extras = {
                "dropped": float(dropped_total),
                "added_profiles": float(len(self._extra_profiles)),
            }
        return SimulationResult(
            label=self.policy.label(self.preemptive),
            schedule=self._schedule,
            report=report,
            probes_used=len(self._schedule),
            expired=expired_total,
            runtime_seconds=runtime,
            probes_failed=self._probes_failed,
            retries=self._retries,
            resources_quarantined=(self.breaker.quarantined_count
                                   if self.breaker is not None else 0),
            extras=extras,
        )

    def run(self, churn=None, churn_rebuild: bool = False) \
            -> SimulationResult:
        """Execute the full epoch and return the run's result.

        ``churn`` is an optional iterable of churn events (see
        :mod:`repro.simulation.churn`), each with a ``chronon`` (the
        clock value at which it lands: 0 = before the first chronon, T =
        right after chronon T is advanced, matching the proxy's
        register-at-clock-T semantics) and an ``action`` of ``"add"``
        (``event.profile``) or ``"remove"`` (``event.profile_id``).
        Events beyond ``epoch.last`` never fire. With
        ``churn_rebuild=True`` every event is followed by
        :meth:`rebuild_structures` — the O(n) from-scratch referee.
        """
        self.begin()
        plan: dict[Chronon, list] = {}
        if churn is not None:
            for event in churn:
                plan.setdefault(event.chronon, []).append(event)
        pending = plan.pop(0, None)
        if pending:
            self._apply_churn(pending, churn_rebuild)
        for chronon in self.epoch:
            self.advance(chronon)
            pending = plan.pop(chronon, None)
            if pending:
                self._apply_churn(pending, churn_rebuild)
        return self.finish()

    def _apply_churn(self, events, rebuild: bool) -> None:
        for event in events:
            if event.action == "add":
                self.add_profile(event.profile)
            elif event.action == "remove":
                self.remove_profile(event.profile_id)
            else:
                raise ModelError(
                    f"unknown churn action {event.action!r}")
            if rebuild:
                self.rebuild_structures()

    # ------------------------------------------------------------------
    # Live churn
    # ------------------------------------------------------------------

    def add_profile(self, profile: Profile) -> int:
        """Register ``profile`` mid-run; returns its assigned id.

        Ids are handed out sequentially after the initial set's (len of
        initial profiles, then +1 per add), so callers can predict them.
        Each t-interval arrives at ``max(earliest_start, clock + 1)``
        (clamped to the epoch) — the proxy's registration clamp — and
        its EI events are spliced into the per-chronon queues; an EI
        whose window already closed before arrival schedules nothing.
        O(log n + EIs) per profile: only touched resources are dirtied.
        """
        if not self._begun:
            raise ModelError("add_profile() requires begin()/run()")
        profile_id = self._next_profile_id
        self._next_profile_id += 1
        attached = profile.attached(profile_id)
        self._extra_profiles.append(attached)
        self._churned = True
        clock = self._clock
        last = self.epoch.last
        rank = attached.rank
        start_events = self._start_events
        expiry_events = self._expiry_events
        states = self._states_by_profile[profile_id]
        for eta in attached:
            state = self.state_factory(eta, rank)
            arrival = min(max(eta.earliest_start, clock + 1), last)
            fs = _FastState(state, self._seq, arrival)
            self._seq += 1
            self._all_states.append(fs)
            self._fs_by_key[state.key] = fs
            states.append(fs)
            for ei in state.eta:
                fs.medf_sum += ei.finish
                if ei.finish < arrival:
                    # Window wholly in the past at registration time:
                    # never probeable, so no events — the expiry was
                    # implicitly "processed" before the state existed.
                    continue
                start = ei.start
                if start <= arrival:
                    start_events[arrival].append((fs, ei))
                elif start <= last:
                    start_events[start].append((fs, ei))
                if ei.finish < last:
                    expiry_events[ei.finish + 1].append((fs, ei))
            # Doomed at birth: a deadline already passed before the
            # state's arrival (possible only for mid-run adds).
            if state.is_expired(arrival):
                fs.doomed = True
        return profile_id

    def remove_profile(self, profile_id: int) -> None:
        """Cancel a registered profile mid-run.

        Live index entries are retired immediately; the ``removed``
        marker freezes the states out of future start/expiry events and
        routes them to the dropped/expired split at :meth:`finish`.
        Already-complete t-intervals stay captured (the client got the
        notification), exactly like the proxy's unregister. Idempotent
        per t-interval. O(log n + touched entries).
        """
        if not self._begun:
            raise ModelError("remove_profile() requires begin()/run()")
        states = self._states_by_profile.get(profile_id)
        if states is None:
            raise ModelError(f"unknown profile id {profile_id!r}")
        clock = self._clock
        for fs in states:
            if fs.removed or fs.state.is_complete:
                continue
            # Doom is only *observable* once the state has arrived: a
            # doomed-at-birth state cancelled before its arrival chronon
            # was never active, so it counts as dropped (the proxy's
            # inactive-before-expiry check order).
            if fs.doomed and fs.arrival <= clock:
                fs.removed = _REMOVED_EXPIRED
            else:
                fs.removed = _REMOVED_DROPPED
            self._remove_state_entries(fs)
        self._churned = True

    def rebuild_structures(self) -> None:
        """From-scratch rebuild of the candidate index and caches.

        The O(n) referee for the incremental churn path: derives the
        index, selection caches and future event queues directly from
        primary state (states, captures, dooms, the clock), exactly as a
        fresh ``begin()`` at this clock would. Property tests assert the
        incremental structures match this after every churn event.
        """
        clock = self._clock
        last = self.epoch.last
        sees_doom = self._sees_doom
        self._index.clear()
        self._cache.clear()
        self._cache2.clear()
        self._dirty.clear()
        start_events: dict[Chronon, list[tuple[_FastState, object]]] = \
            defaultdict(list)
        expiry_events: dict[Chronon, list[tuple[_FastState, object]]] = \
            defaultdict(list)
        for fs in self._all_states:
            if fs.removed:
                continue
            state = fs.state
            arrival = fs.arrival
            captured = state.captured
            complete = state.is_complete
            doomed_out = sees_doom and fs.doomed
            for ei in state.eta:
                if captured[ei.ei_id] or ei.finish < arrival:
                    continue
                start = ei.start
                if start <= arrival:
                    fire = arrival
                elif start <= last:
                    fire = start
                else:
                    fire = None
                if fire is not None:
                    if fire > clock:
                        start_events[fire].append((fs, ei))
                    elif (ei.finish >= clock and not complete
                            and not doomed_out):
                        self._add_entry(fs, ei)
                if ei.finish < last and ei.finish + 1 > clock:
                    expiry_events[ei.finish + 1].append((fs, ei))
        self._start_events = start_events
        self._expiry_events = expiry_events
        self._dirty.update(self._index)

    def _prober(self, chronon: Chronon):
        """A prober over the fault injector (always ok without one)."""
        injector = self.injector
        if injector is None:
            return lambda resource_id, attempt: OK_DECISION
        return (lambda resource_id, attempt:
                injector.decide(resource_id, chronon, attempt))
