"""Event-indexed fast simulation engine.

:class:`FastProxySimulator` computes exactly the same
:class:`~repro.simulation.result.SimulationResult` as the reference
:class:`~repro.simulation.proxy.ProxySimulator` — probe for probe,
including under fault injection, retries and the circuit breaker — while
replacing the reference's per-chronon rescans with incremental
maintenance:

* **Event queues** (built once at :meth:`run` entry) bucket every state
  arrival, EI window opening (start) and EI window closing (expiry) by
  chronon, so a chronon only touches what actually changed instead of
  re-scanning the whole active set.
* **A per-resource candidate index** maps each resource to its currently
  probeable (state, EI) pairs, updated only on arrival, start, expiry,
  capture and doom events. The reference's candidate bag at any chronon
  is exactly: arrived, uncaptured, window open now, parent not complete,
  and — for rank/multi-EI-level policies — parent not doomed; all five
  conditions change only at events.
* **Cached selection** for chronon-shift-invariant policies (S-EDF,
  MRSF, FCFS, LFF, StaticRank, anti-MRSF, Coverage): each resource
  caches its best candidate key in *absolute* form (deadline instead of
  deadline-minus-chronon). Because every candidate's score shifts by the
  same amount per chronon (or not at all), absolute keys rank resources
  identically to the reference's relative keys, and a resource is
  re-scored only when an event dirtied it. M-EDF scores change
  non-uniformly across candidates, so it is re-scored every chronon —
  but in O(1) per candidate via per-state aggregates instead of the
  reference's O(rank) sum.

Equivalence of tie-breaking: the reference resolves full score ties by
candidate list position (``min`` keeps the first). The reference list is
ordered by (arrival order, EI id), so extending the fast engine's min key
with ``(seq, ei_id)`` — where ``seq`` numbers states in arrival order —
reproduces the reference's choice exactly. Final accounting needs no
per-chronon bookkeeping: a t-interval is counted captured iff it is
complete when the epoch ends, expired otherwise, which is provably what
the reference's retire/flush counting computes.

Policies not recognised (e.g. :class:`RandomPolicy`, custom subclasses)
fall back to a generic path that still benefits from the index: the flat
candidate list is materialised from it in reference order and handed to
:func:`~repro.online.base.select_probes`.

Custom ``state_factory`` states are supported under the two contracts the
provided states satisfy: ``is_complete`` may flip (to True) only on
``mark_captured``, and ``is_expired`` may flip (to True) only when an
uncaptured EI's deadline passes.
"""

from __future__ import annotations

import heapq
import time
from collections import defaultdict

from repro.core.budget import BudgetVector
from repro.core.completeness import CompletenessReport
from repro.core.profile import ProfileSet
from repro.core.schedule import Schedule
from repro.core.timeline import Chronon, Epoch
from repro.faults.breaker import CircuitBreaker, RetryConfig
from repro.faults.engine import execute_probes
from repro.faults.model import OK_DECISION, FaultInjector, FaultSpec
from repro.online.base import (
    EI_LEVEL,
    Candidate,
    Policy,
    ProbeDecision,
    TIntervalState,
    select_probes,
)
from repro.online.baselines import (
    CoveragePolicy,
    FCFSPolicy,
    LeastFlexibleFirstPolicy,
    MostResidualFirstPolicy,
    StaticRankPolicy,
)
from repro.online.medf import MEDFPolicy
from repro.online.mrsf import MRSFPolicy
from repro.online.sedf import SEDFPolicy
from repro.simulation.result import SimulationResult

__all__ = ["FastProxySimulator"]


class _FastState:
    """Per-t-interval bookkeeping of the fast engine.

    ``seq`` numbers states in the reference's active-list order (arrival
    chronon, then creation order), which the tie-break keys rely on.
    ``medf_sum``/``medf_started`` are the M-EDF aggregates: the sum of
    deadlines over uncaptured EIs and the number of uncaptured EIs whose
    window has opened — the M-EDF score at chronon T is
    ``medf_sum - T * medf_started``, exactly (all quantities are small
    integers, so float arithmetic is exact).
    """

    __slots__ = ("state", "seq", "arrival", "doomed",
                 "medf_sum", "medf_started", "pid", "tid")

    def __init__(self, state: TIntervalState, seq: int,
                 arrival: Chronon) -> None:
        self.state = state
        self.seq = seq
        self.arrival = arrival
        self.doomed = False
        self.medf_sum = 0
        self.medf_started = 0
        # Tie-break identity, cached off the eta to keep the scoring
        # loops free of attribute chains.
        self.pid = state.eta.profile_id
        self.tid = state.eta.tinterval_id


# Chronon-shift-invariant scorers in absolute form: scorer(fs, ei, T)
# returns a value whose ordering over candidates equals the ordering of
# the policy's true scores at any fixed chronon T. For S-EDF and LFF the
# true score is (absolute value - T): subtracting the same T from every
# candidate preserves order exactly. MRSF-family scores are
# chronon-independent but change on captures of the parent state.
_ABS_SCORERS = {
    SEDFPolicy: lambda fs, ei, T: float(ei.finish),
    FCFSPolicy: lambda fs, ei, T: float(ei.start),
    # Candidates are active (start <= T), so LFF's remaining width is
    # finish - T + 1 for every one of them.
    LeastFlexibleFirstPolicy: lambda fs, ei, T: float(ei.finish + 1),
    StaticRankPolicy: lambda fs, ei, T: float(fs.state.profile_rank),
    MRSFPolicy: lambda fs, ei, T: float(
        fs.state.profile_rank - fs.state.captured_count),
    MostResidualFirstPolicy: lambda fs, ei, T: -float(
        fs.state.profile_rank - fs.state.captured_count),
}

#: Policies whose cached resource keys go stale when a parent state's
#: captured count changes.
_CAPTURE_SENSITIVE = (MRSFPolicy, MostResidualFirstPolicy)


class FastProxySimulator:
    """Drop-in fast replacement for :class:`ProxySimulator`.

    Accepts the same constructor arguments and produces an identical
    :class:`SimulationResult` (up to ``runtime_seconds``, which measures
    this engine's own wall time).
    """

    def __init__(self, profiles: ProfileSet, epoch: Epoch,
                 budget: BudgetVector, policy: Policy,
                 preemptive: bool = True,
                 state_factory=TIntervalState,
                 faults: FaultSpec | None = None,
                 retry: RetryConfig | None = None,
                 breaker: CircuitBreaker | None = None) -> None:
        self.profiles = profiles
        self.epoch = epoch
        self.budget = budget
        self.policy = policy
        self.preemptive = preemptive
        self.state_factory = state_factory
        if isinstance(faults, FaultSpec):
            faults = FaultInjector(faults, record=False)
        self.injector = faults
        self.retry = retry
        self.breaker = breaker

        # Selection mode: cached absolute keys, per-chronon M-EDF
        # rescoring, or the generic fallback. Exact type match only —
        # subclasses may override score() arbitrarily.
        kind = type(policy)
        self._scorer = _ABS_SCORERS.get(kind)
        self._coverage = kind is CoveragePolicy
        self._medf = kind is MEDFPolicy
        self._fast_mode = (self._scorer is not None or self._coverage
                           or self._medf)
        self._capture_dirty = self._fast_mode and isinstance(
            policy, _CAPTURE_SENSITIVE)
        # NP mode pools depend on committed flags, so flips dirty caches.
        self._commit_dirty = self._fast_mode and not preemptive

        # rid -> {(seq, ei_id) -> (fs, ei, Candidate)}
        self._index: dict[int, dict[tuple[int, int], tuple]] = {}
        # Ready-made selection triples (rank_key, rid, best_candidate),
        # one per resource with a non-empty pool, rebuilt only when the
        # resource is dirtied: in preemptive mode ``_cache`` holds the
        # single pool; in NP mode ``_cache`` is the committed pool and
        # ``_cache2`` the fresh pool.
        self._cache: dict[int, tuple] = {}
        self._cache2: dict[int, tuple] = {}
        self._dirty: set[int] = set()
        self._fs_by_key: dict[tuple[int, int], _FastState] = {}

    # ------------------------------------------------------------------
    # Candidate index maintenance
    # ------------------------------------------------------------------

    def _add_entry(self, fs: _FastState, ei) -> None:
        rid = ei.resource_id
        entries = self._index.get(rid)
        if entries is None:
            entries = {}
            self._index[rid] = entries
        entries[(fs.seq, ei.ei_id)] = (fs, ei, Candidate(fs.state, ei))
        if self._fast_mode:
            self._dirty.add(rid)

    def _remove_entry(self, fs: _FastState, ei) -> None:
        rid = ei.resource_id
        entries = self._index.get(rid)
        if entries is None:
            return
        if entries.pop((fs.seq, ei.ei_id), None) is None:
            return
        if entries:
            if self._fast_mode:
                self._dirty.add(rid)
        else:
            del self._index[rid]
            self._cache.pop(rid, None)
            self._cache2.pop(rid, None)
            self._dirty.discard(rid)

    def _remove_state_entries(self, fs: _FastState) -> None:
        """Drop every remaining index entry of one t-interval."""
        captured = fs.state.captured
        for ei in fs.state.eta:
            if not captured[ei.ei_id]:
                self._remove_entry(fs, ei)

    def _dirty_state_entries(self, fs: _FastState) -> None:
        """Mark resources holding this state's entries for re-scoring."""
        seq = fs.seq
        index = self._index
        for ei in fs.state.eta:
            entries = index.get(ei.resource_id)
            if entries and (seq, ei.ei_id) in entries:
                self._dirty.add(ei.resource_id)

    # ------------------------------------------------------------------
    # Cached selection
    # ------------------------------------------------------------------

    def _recompute(self, rid: int, entries: dict, chronon: Chronon) -> None:
        """Rebuild one resource's ready-made selection triple(s).

        The per-entry key extends the reference's (score, deadline,
        start, resource, profile, t-interval) comparison with (seq,
        ei_id), so a full tie resolves to the entry that comes first in
        the reference's candidate list — reproducing ``min``'s
        first-wins behaviour exactly. The stored triple's rank key
        mirrors the reference's resource ranking: (best score, best
        deadline, -pool size, best tie-break). Score and deadline shift
        uniformly with the chronon across resources, so comparing the
        absolute forms ranks identically.
        """
        scorer = self._scorer
        coverage_score = -float(len(entries)) if self._coverage else None
        medf = self._medf
        if self.preemptive:
            best = None
            best_cand = None
            for (seq, ei_id), (fs, ei, cand) in entries.items():
                if medf:
                    score = float(fs.medf_sum - chronon * fs.medf_started)
                elif coverage_score is not None:
                    score = coverage_score
                else:
                    score = scorer(fs, ei, chronon)
                key = (score, ei.finish, ei.start, rid,
                       fs.pid, fs.tid, seq, ei_id)
                if best is None or key < best:
                    best = key
                    best_cand = cand
            self._cache[rid] = (
                (best[0], best[1], -len(entries), best[2], best[3],
                 best[4], best[5]), rid, best_cand)
            return
        best_c = best_f = None
        cand_c = cand_f = None
        n_c = n_f = 0
        for (seq, ei_id), (fs, ei, cand) in entries.items():
            if medf:
                score = float(fs.medf_sum - chronon * fs.medf_started)
            elif coverage_score is not None:
                score = coverage_score
            else:
                score = scorer(fs, ei, chronon)
            key = (score, ei.finish, ei.start, rid,
                   fs.pid, fs.tid, seq, ei_id)
            if fs.state.committed:
                n_c += 1
                if best_c is None or key < best_c:
                    best_c, cand_c = key, cand
            else:
                n_f += 1
                if best_f is None or key < best_f:
                    best_f, cand_f = key, cand
        if best_c is not None:
            self._cache[rid] = (
                (best_c[0], best_c[1], -n_c, best_c[2], best_c[3],
                 best_c[4], best_c[5]), rid, cand_c)
        else:
            self._cache.pop(rid, None)
        if best_f is not None:
            self._cache2[rid] = (
                (best_f[0], best_f[1], -n_f, best_f[2], best_f[3],
                 best_f[4], best_f[5]), rid, cand_f)
        else:
            self._cache2.pop(rid, None)

    def _select_fast(self, chronon: Chronon,
                     budget: int) -> list[ProbeDecision]:
        index = self._index
        if self._medf:
            # M-EDF scores drift non-uniformly with the chronon: rescore
            # everything (O(1) per candidate via the state aggregates).
            for rid, entries in index.items():
                self._recompute(rid, entries, chronon)
            self._dirty.clear()
        elif self._dirty:
            for rid in self._dirty:
                entries = index.get(rid)
                if entries:
                    self._recompute(rid, entries, chronon)
            self._dirty.clear()

        breaker = self.breaker
        blocked = None
        if breaker is not None:
            blocked = {rid for rid in index
                       if breaker.is_blocked(rid, chronon)}
            if len(blocked) == len(index):
                return []
        cache = self._cache

        # After the refresh above, cache keys track index keys exactly
        # (every index mutation dirties or evicts), so the pools are the
        # cached triples themselves — no per-chronon key building.
        if self.preemptive:
            if not blocked:
                pool = cache.values()
            else:
                pool = [triple for rid, triple in cache.items()
                        if rid not in blocked]
            return [ProbeDecision(rid, cand)
                    for _k, rid, cand in heapq.nsmallest(budget, pool)]

        decisions: list[ProbeDecision] = []
        chosen: set[int] = set()
        if not blocked:
            pool = cache.values()
        else:
            pool = [triple for rid, triple in cache.items()
                    if rid not in blocked]
        for _k, rid, cand in heapq.nsmallest(budget, pool):
            decisions.append(ProbeDecision(rid, cand))
            chosen.add(rid)
        if len(decisions) < budget:
            needed = budget - len(decisions) + len(chosen)
            cache2 = self._cache2
            if not blocked:
                pool2 = cache2.values()
            else:
                pool2 = [triple for rid, triple in cache2.items()
                         if rid not in blocked]
            for _k, rid, cand in heapq.nsmallest(needed, pool2):
                if rid in chosen:
                    continue
                if len(decisions) >= budget:
                    break
                decisions.append(ProbeDecision(rid, cand))
                chosen.add(rid)
        return decisions

    def _select_generic(self, chronon: Chronon,
                        budget: int) -> list[ProbeDecision]:
        """Fallback for unrecognised policies: index -> flat candidates.

        The list is ordered by (seq, ei_id) — the reference's candidate
        order — and handed to the shared selection code, so arbitrary
        Policy subclasses (stateful hooks included) behave identically.
        """
        items: list[tuple[tuple[int, int], tuple]] = []
        for entries in self._index.values():
            items.extend(entries.items())
        items.sort(key=lambda kv: kv[0])
        candidates = [kv[1][2] for kv in items]
        breaker = self.breaker
        if breaker is not None:
            blocked = {rid for rid in self._index
                       if breaker.is_blocked(rid, chronon)}
            if blocked:
                candidates = [c for c in candidates
                              if c.ei.resource_id not in blocked]
        if not candidates:
            return []
        self.policy.observe_candidates(candidates, chronon)
        return select_probes(self.policy, candidates, chronon, budget,
                             self.preemptive)

    # ------------------------------------------------------------------
    # Captures
    # ------------------------------------------------------------------

    def _apply_captures(self, probed: list[int], chronon: Chronon) -> None:
        """Capture every candidate EI on the probed resources.

        Mirrors :func:`~repro.online.base.apply_probes`: all probed
        entries are captured (even if a capture completes their
        t-interval mid-loop), then completed t-intervals have their
        remaining uncaptured entries retired from the index (relevant
        for quota-style states that complete early).
        """
        popped: list[dict] = []
        for rid in probed:
            entries = self._index.pop(rid, None)
            if not entries:
                continue
            self._cache.pop(rid, None)
            self._cache2.pop(rid, None)
            self._dirty.discard(rid)
            popped.append(entries)
        completed: list[_FastState] = []
        for entries in popped:
            for fs, ei, _cand in entries.values():
                state = fs.state
                state.mark_captured(ei.ei_id)
                fs.medf_sum -= ei.finish
                fs.medf_started -= 1
                flipped = not state.committed
                state.committed = True
                if (self._capture_dirty
                        or (flipped and self._commit_dirty)):
                    self._dirty_state_entries(fs)
                if state.is_complete:
                    completed.append(fs)
        for fs in completed:
            self._remove_state_entries(fs)

    def _commit(self, state: TIntervalState) -> None:
        """Commit a selected t-interval (probe issued, even if failed)."""
        if not state.committed:
            state.committed = True
            if self._commit_dirty:
                self._dirty_state_entries(self._fs_by_key[state.key])

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the full epoch and return the run's result."""
        started = time.perf_counter()
        last = self.epoch.last

        # Bucket states by arrival (clamped like the reference so that
        # past-epoch t-intervals are still counted), then number them in
        # the reference's active-list order.
        buckets: dict[Chronon, list[TIntervalState]] = {}
        for profile in self.profiles:
            rank = profile.rank
            for eta in profile:
                state = self.state_factory(eta, rank)
                arrival = min(eta.earliest_start, last)
                buckets.setdefault(arrival, []).append(state)

        # Start events cover both cases of an EI becoming probeable: its
        # window was already open when the state arrived (event at the
        # arrival chronon), or it opens later (event at ei.start). The
        # single handler keeps their semantics identical.
        start_events: dict[Chronon, list[tuple[_FastState, object]]] = \
            defaultdict(list)
        expiry_events: dict[Chronon, list[tuple[_FastState, object]]] = \
            defaultdict(list)
        all_states: list[_FastState] = []
        seq = 0
        for arrival in sorted(buckets):
            for state in buckets[arrival]:
                fs = _FastState(state, seq, arrival)
                seq += 1
                all_states.append(fs)
                self._fs_by_key[state.key] = fs
                for ei in state.eta:
                    fs.medf_sum += ei.finish
                    start = ei.start
                    if start <= arrival:
                        start_events[arrival].append((fs, ei))
                    elif start <= last:
                        start_events[start].append((fs, ei))
                    if ei.finish < last:
                        expiry_events[ei.finish + 1].append((fs, ei))

        schedule = Schedule()
        probes_failed = 0
        retries = 0
        sees_doom = self.policy.level != EI_LEVEL
        fault_aware = (self.injector is not None
                       or self.breaker is not None
                       or self.retry is not None)
        injector = self.injector
        index = self._index
        budget = self.budget
        select = self._select_fast if self._fast_mode \
            else self._select_generic

        for chronon in self.epoch:
            starts = start_events.get(chronon)
            if starts is not None:
                for fs, ei in starts:
                    state = fs.state
                    if state.captured[ei.ei_id]:
                        continue
                    fs.medf_started += 1
                    if state.is_complete:
                        continue  # quota-complete: no longer a candidate
                    if sees_doom and fs.doomed:
                        continue
                    self._add_entry(fs, ei)
            expiries = expiry_events.get(chronon)
            if expiries is not None:
                for fs, ei in expiries:
                    state = fs.state
                    if state.captured[ei.ei_id]:
                        continue
                    self._remove_entry(fs, ei)
                    # An uncaptured EI just crossed its deadline — the
                    # only instant at which a state can become doomed.
                    if (not fs.doomed and not state.is_complete
                            and state.is_expired(chronon)):
                        fs.doomed = True
                        if sees_doom:
                            self._remove_state_entries(fs)

            budget_now = budget.at(chronon)
            if budget_now <= 0 or not index:
                continue
            decisions = select(chronon, budget_now)
            if not decisions:
                continue

            if not fault_aware:
                for decision in decisions:
                    schedule.add_probe(decision.resource_id, chronon)
                self._apply_captures(
                    [d.resource_id for d in decisions], chronon)
                continue

            if injector is not None:
                injector.begin_chronon(chronon)
            round_ = execute_probes(
                decisions, chronon, budget_now, self._prober(chronon),
                retry=self.retry, breaker=self.breaker)
            probes_failed += round_.failures
            retries += round_.retries
            ok_rids = []
            for decision in decisions:
                # Selection commits the t-interval even when the request
                # fails (budget was spent on it), like the reference.
                self._commit(decision.selected.state)
                if decision.resource_id in round_.outcomes:
                    ok_rids.append(decision.resource_id)
                    schedule.add_probe(decision.resource_id, chronon)
            self._apply_captures(ok_rids, chronon)

        # Final accounting. The reference counts each t-interval exactly
        # once — captured when it completes, expired at doom time or at
        # the end-of-epoch flush — which reduces to: captured iff
        # complete when the epoch ends.
        captured_total = 0
        expired_total = 0
        per_profile: dict[int, tuple[int, int]] = {
            profile.profile_id: (0, len(profile))
            for profile in self.profiles
        }
        per_rank: dict[int, tuple[int, int]] = {}
        for eta in self.profiles.tintervals():
            captured, total = per_rank.get(eta.size, (0, 0))
            per_rank[eta.size] = (captured, total + 1)
        for fs in all_states:
            state = fs.state
            hit = state.is_complete
            if hit:
                captured_total += 1
            else:
                expired_total += 1
            profile_id = state.eta.profile_id
            hits, total = per_profile.get(profile_id, (0, 0))
            per_profile[profile_id] = (hits + int(hit), total)
            rank_hits, rank_total = per_rank[state.eta.size]
            per_rank[state.eta.size] = (rank_hits + int(hit), rank_total)

        runtime = time.perf_counter() - started
        report = CompletenessReport(
            captured=captured_total,
            total=self.profiles.total_tintervals,
            per_profile=per_profile,
            per_rank=per_rank,
        )
        return SimulationResult(
            label=self.policy.label(self.preemptive),
            schedule=schedule,
            report=report,
            probes_used=len(schedule),
            expired=expired_total,
            runtime_seconds=runtime,
            probes_failed=probes_failed,
            retries=retries,
            resources_quarantined=(self.breaker.quarantined_count
                                   if self.breaker is not None else 0),
        )

    def _prober(self, chronon: Chronon):
        """A prober over the fault injector (always ok without one)."""
        injector = self.injector
        if injector is None:
            return lambda resource_id, attempt: OK_DECISION
        return (lambda resource_id, attempt:
                injector.decide(resource_id, chronon, attempt))
