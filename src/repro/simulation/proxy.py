"""The online proxy simulator (Section 5.1's simulation environment).

At every chronon the proxy:

1. receives the t-intervals arriving at this chronon (a t-interval arrives
   at the earliest start of its EIs — the stream the paper denotes
   ``eta(j)``);
2. drops completed t-intervals and expires those that can no longer
   complete (an uncaptured EI's deadline passed);
3. builds the candidate EI bag ``cands(I)`` — uncaptured EIs active now;
4. asks the policy for up to ``C_j`` resources to probe (preemptive or
   non-preemptive selection, see :func:`repro.online.base.select_probes`);
5. executes the probes: *every* active candidate EI on a probed resource
   is captured, which is how intra-resource overlap is exploited.

The simulator is deterministic: ties in policy scores break on fixed keys.
"""

from __future__ import annotations

import time

from repro.core.budget import BudgetVector
from repro.core.completeness import CompletenessReport
from repro.core.profile import ProfileSet
from repro.core.schedule import Schedule
from repro.core.timeline import Epoch
from repro.faults.breaker import CircuitBreaker, RetryConfig
from repro.faults.engine import execute_probes
from repro.faults.model import OK_DECISION, FaultInjector, FaultSpec
from repro.online.base import (
    EI_LEVEL,
    Candidate,
    Policy,
    TIntervalState,
    apply_probes,
    filter_blocked,
    select_probes,
)
from repro.simulation.result import SimulationResult

__all__ = ["ProxySimulator", "run_online"]


class ProxySimulator:
    """Simulates the proxy's online monitoring loop over an epoch.

    Parameters
    ----------
    profiles:
        Registered client profiles (the t-interval stream source).
    epoch:
        Epoch to simulate.
    budget:
        Probing budget vector.
    policy:
        Online policy scoring candidate EIs.
    preemptive:
        Run the policy preemptively (``True``, the paper's "(P)" variant)
        or non-preemptively ("(NP)").
    state_factory:
        Callable building the runtime state for each t-interval; defaults
        to :class:`TIntervalState`. Extensions (e.g. quota-based partial
        capture, see :mod:`repro.extensions.partial`) substitute richer
        states here.
    faults:
        Fault model applied to probes: a :class:`FaultSpec`, an explicit
        injector (e.g. ``trace.replay()``), or ``None`` for a reliable
        source. Failed probes consume budget without capturing.
    retry:
        In-chronon retry allowance for failed probes, spending leftover
        budget; ``None`` disables retries.
    breaker:
        Circuit breaker quarantining persistently failing resources;
        ``None`` disables.
    """

    def __init__(self, profiles: ProfileSet, epoch: Epoch,
                 budget: BudgetVector, policy: Policy,
                 preemptive: bool = True,
                 state_factory=TIntervalState,
                 faults: FaultSpec | None = None,
                 retry: RetryConfig | None = None,
                 breaker: CircuitBreaker | None = None) -> None:
        self.profiles = profiles
        self.epoch = epoch
        self.budget = budget
        self.policy = policy
        self.preemptive = preemptive
        self.state_factory = state_factory
        if isinstance(faults, FaultSpec):
            faults = FaultInjector(faults, record=False)
        self.injector = faults
        self.retry = retry
        self.breaker = breaker

    def run(self) -> SimulationResult:
        """Execute the full epoch and return the run's result."""
        arrivals = self._arrival_index()
        started = time.perf_counter()

        active: list[TIntervalState] = []
        schedule = Schedule()
        captured_total = 0
        expired_total = 0
        per_profile: dict[int, tuple[int, int]] = {
            profile.profile_id: (0, len(profile))
            for profile in self.profiles
        }
        per_rank: dict[int, tuple[int, int]] = {}
        for eta in self.profiles.tintervals():
            captured, total = per_rank.get(eta.size, (0, 0))
            per_rank[eta.size] = (captured, total + 1)

        # A doomed t-interval (some uncaptured EI already expired) can
        # never complete. Whether its remaining EIs still attract probes
        # is an *information-level* question (§4.2.2): EI-level policies
        # (e.g. S-EDF) see individual EIs only and keep wasting budget on
        # them; rank- and multi-EI-level policies see the siblings and
        # skip them.
        policy_sees_doom = self.policy.level != EI_LEVEL
        doomed_counted: set[tuple[int, int]] = set()
        fault_aware = (self.injector is not None
                       or self.breaker is not None
                       or self.retry is not None)
        probes_failed = 0
        retries = 0

        for chronon in self.epoch:
            if self.injector is not None:
                self.injector.begin_chronon(chronon)
            active.extend(arrivals.get(chronon, ()))

            # Retire completed t-intervals and those with no probeable
            # future; count doomed ones as expired the moment doom hits.
            still_active: list[TIntervalState] = []
            for state in active:
                if state.is_complete:
                    captured_total += 1
                    self._count(per_profile, per_rank, state, captured=True)
                    continue
                if state.is_expired(chronon):
                    if state.key not in doomed_counted:
                        doomed_counted.add(state.key)
                        expired_total += 1
                        self._count(per_profile, per_rank, state,
                                    captured=False)
                    # Keep the carcass around while any EI window is
                    # still open — EI-level policies can't tell.
                    if any(not ei.expired_at(chronon)
                           for ei in state.uncaptured_eis()):
                        still_active.append(state)
                    continue
                still_active.append(state)
            active = still_active

            budget_now = self.budget.at(chronon)
            if budget_now <= 0 or not active:
                continue

            candidates = [
                Candidate(state, ei)
                for state in active
                if policy_sees_doom is False
                or not state.is_expired(chronon)
                for ei in state.probeable_eis(chronon)
            ]
            candidates = filter_blocked(candidates, self.breaker, chronon)
            if not candidates:
                continue
            self.policy.observe_candidates(candidates, chronon)
            decisions = select_probes(self.policy, candidates, chronon,
                                      budget_now, self.preemptive)
            if not fault_aware:
                for decision in decisions:
                    schedule.add_probe(decision.resource_id, chronon)
                apply_probes(decisions, candidates, chronon)
                continue

            round_ = execute_probes(
                decisions, chronon, budget_now, self._prober(chronon),
                retry=self.retry, breaker=self.breaker)
            probes_failed += round_.failures
            retries += round_.retries
            ok_decisions = [decision for decision in decisions
                            if decision.resource_id in round_.outcomes]
            for decision in decisions:
                # Selection commits the t-interval even when the request
                # fails — the proxy spent budget on it (mirrors the
                # runtime proxy exactly).
                decision.selected.state.committed = True
            for decision in ok_decisions:
                schedule.add_probe(decision.resource_id, chronon)
            apply_probes(ok_decisions, candidates, chronon)

        # Epoch over: flush what is left in the active set.
        for state in active:
            if state.is_complete:
                captured_total += 1
                self._count(per_profile, per_rank, state, captured=True)
            elif state.key not in doomed_counted:
                expired_total += 1
                self._count(per_profile, per_rank, state, captured=False)

        runtime = time.perf_counter() - started
        report = CompletenessReport(
            captured=captured_total,
            total=self.profiles.total_tintervals,
            per_profile=per_profile,
            per_rank=per_rank,
        )
        return SimulationResult(
            label=self.policy.label(self.preemptive),
            schedule=schedule,
            report=report,
            probes_used=len(schedule),
            expired=expired_total,
            runtime_seconds=runtime,
            probes_failed=probes_failed,
            retries=retries,
            resources_quarantined=(self.breaker.quarantined_count
                                   if self.breaker is not None else 0),
        )

    def _prober(self, chronon: int):
        """A prober over the fault injector (always ok without one)."""
        injector = self.injector
        if injector is None:
            return lambda resource_id, attempt: OK_DECISION
        return (lambda resource_id, attempt:
                injector.decide(resource_id, chronon, attempt))

    def _arrival_index(self) -> dict[int, list[TIntervalState]]:
        """t-intervals bucketed by their arrival chronon."""
        arrivals: dict[int, list[TIntervalState]] = {}
        for profile in self.profiles:
            rank = profile.rank
            for eta in profile:
                state = self.state_factory(eta, rank)
                # A t-interval starting past the epoch can never be
                # captured, but it must still be *counted*: clamp its
                # arrival to the last chronon so the end-of-epoch flush
                # records it as expired.
                arrival = min(eta.earliest_start, self.epoch.last)
                arrivals.setdefault(arrival, []).append(state)
        return arrivals

    @staticmethod
    def _count(per_profile: dict[int, tuple[int, int]],
               per_rank: dict[int, tuple[int, int]],
               state: TIntervalState, captured: bool) -> None:
        profile_id = state.eta.profile_id
        hits, total = per_profile.get(profile_id, (0, 0))
        per_profile[profile_id] = (hits + int(captured), total)
        rank_hits, rank_total = per_rank.get(state.eta.size, (0, 0))
        per_rank[state.eta.size] = (rank_hits + int(captured), rank_total)


def run_online(profiles: ProfileSet, epoch: Epoch, budget: BudgetVector,
               policy: Policy, preemptive: bool = True,
               faults: FaultSpec | None = None,
               retry: RetryConfig | None = None,
               breaker: CircuitBreaker | None = None,
               engine: str = "fast") -> SimulationResult:
    """One-call convenience wrapper around the simulation engines.

    ``engine`` selects the implementation: ``"fast"`` (default) uses the
    event-indexed :class:`~repro.simulation.engine.FastProxySimulator`,
    ``"reference"`` the straightforward per-chronon :class:`ProxySimulator`,
    ``"batch"`` the columnar :func:`~repro.simulation.batch.run_block`
    engine (single-lane block here; the harness groups whole lineups).
    All produce identical results (verified by the equivalence property
    suites); the reference engine remains the executable specification.

    The batch engine lowers the fault layer too (``faults``/``retry``/
    ``breaker`` ride the block as a
    :class:`~repro.simulation.batch.FaultLane`); only genuinely
    unsupported configurations — replayed fault sources, subclassed
    components, policies without a columnar scoring kind — fall back to
    the fast engine silently.
    """
    if engine == "batch":
        from repro.simulation.batch import (
            BatchUnsupported,
            FaultLane,
            run_block,
        )
        fault = FaultLane(faults, retry, breaker) \
            if (faults is not None or retry is not None
                or breaker is not None) else None
        try:
            return run_block(profiles, epoch,
                             [(policy, preemptive, budget, 0, fault)])[0]
        except BatchUnsupported:
            pass
        engine = "fast"
    if engine == "fast":
        from repro.simulation.engine import FastProxySimulator
        simulator = FastProxySimulator(
            profiles, epoch, budget, policy, preemptive=preemptive,
            faults=faults, retry=retry, breaker=breaker)
    elif engine == "reference":
        simulator = ProxySimulator(
            profiles, epoch, budget, policy, preemptive=preemptive,
            faults=faults, retry=retry, breaker=breaker)
    else:
        raise ValueError(
            f"unknown engine {engine!r} "
            "(expected 'fast', 'reference' or 'batch')")
    return simulator.run()
