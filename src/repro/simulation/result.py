"""Simulation result types shared by the online proxy and offline runners."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.completeness import CompletenessReport
from repro.core.schedule import Schedule

__all__ = ["SimulationResult"]


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of one monitoring run (online or offline).

    Attributes
    ----------
    label:
        Human-readable identifier, e.g. ``"MRSF(P)"`` or
        ``"offline-approx"``.
    schedule:
        The probe schedule that was executed/produced.
    report:
        Capture accounting against the input profile set.
    probes_used:
        Total probes issued.
    expired:
        Number of t-intervals that expired uncaptured during the run
        (only meaningful for online runs; 0 otherwise).
    runtime_seconds:
        Wall-clock time spent deciding/solving (excludes workload
        generation).
    probes_failed:
        Pull requests that got no snapshot (drops, timeouts, outages,
        throttles — including failed retries); 0 for reliable runs.
    retries:
        In-chronon retry attempts issued after failed probes.
    resources_quarantined:
        Distinct resources the circuit breaker ever quarantined.
    extras:
        Free-form diagnostic counters.
    """

    label: str
    schedule: Schedule
    report: CompletenessReport
    probes_used: int
    expired: int = 0
    runtime_seconds: float = 0.0
    probes_failed: int = 0
    retries: int = 0
    resources_quarantined: int = 0
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def gc(self) -> float:
        """Gained completeness of the run."""
        return self.report.gc

    def summary(self) -> str:
        """One-line human-readable summary."""
        text = (f"{self.label}: GC={self.gc:.4f} "
                f"({self.report.captured}/{self.report.total}), "
                f"probes={self.probes_used}, expired={self.expired}, "
                f"runtime={self.runtime_seconds:.3f}s")
        if self.probes_failed or self.retries or self.resources_quarantined:
            text += (f", failed={self.probes_failed}, "
                     f"retries={self.retries}, "
                     f"quarantined={self.resources_quarantined}")
        return text
