#!/usr/bin/env python3
"""Web-feed monitoring with utilities and partial capture (§6 extensions).

A Google-Reader-style aggregator subscribes to a population of feeds with
the *overwrite* restriction (items must be pulled before the server
overwrites them — 80% of feeds keep <10KB online per the study the paper
cites). Two of the paper's future-work extensions are exercised:

* **utilities** — breaking-news feeds are worth 5x a regular feed;
* **partial capture** — a digest profile is satisfied by seeing any 2 of
  3 related feeds' updates (k-of-n quota).

Run: ``python examples/feed_monitor.py``
"""

from repro import (
    BudgetVector,
    Epoch,
    FeedTraceSynthesizer,
    make_policy,
    run_online,
)
from repro.core import ProfileSet
from repro.extensions import (
    QuotaMap,
    UtilityWeights,
    quota_completeness,
    run_weighted,
    run_with_quotas,
    weighted_completeness,
)
from repro.workloads import (
    AuctionWatchTemplate,
    OverwriteRestriction,
    SingleResourceTemplate,
)


def main() -> None:
    epoch = Epoch(400)
    synthesizer = FeedTraceSynthesizer(
        num_feeds=40, epoch=epoch, chronons_per_hour=8, seed=3)
    trace = synthesizer.generate()
    print(f"feeds: 40, items: {len(trace)} over {epoch.length} chronons\n")

    # Simple subscriptions: every item of feeds 0..24, before overwrite —
    # far more demand than one probe per chronon can serve, so the
    # utilities below genuinely change what gets captured.
    subscriptions = SingleResourceTemplate(OverwriteRestriction())
    simple = subscriptions.build_profile(list(range(25)), trace, epoch,
                                         name="inbox")

    # A digest over three related feeds: each "round" needs 2 of the 3.
    digest_template = AuctionWatchTemplate(OverwriteRestriction())
    digest = digest_template.build_profile([10, 11, 12], trace, epoch,
                                           name="digest-2of3")

    profiles = ProfileSet([simple, digest])
    # NOTE: the profile set re-attaches profiles with fresh ids — always
    # reference t-intervals through the set, not the inputs.
    inbox, digest = profiles[0], profiles[1]
    budget = BudgetVector(1)
    policy = make_policy("MRSF")

    # --- plain run -----------------------------------------------------
    plain = run_online(profiles, epoch, budget, policy)
    print(f"plain:     {plain.summary()}")

    # --- utility-weighted run: feed 0 is breaking news (worth 10x) ------
    weights = UtilityWeights(
        tinterval_weights={
            (eta.profile_id, eta.tinterval_id): 10.0
            for eta in inbox
            if any(ei.resource_id == 0 for ei in eta)
        },
    )
    weighted = run_weighted(profiles, epoch, budget, policy, weights)
    plain_weighted_gc = weighted_completeness(profiles, plain.schedule,
                                              weights)
    print(f"weighted:  {weighted.result.summary()}")
    print(f"           utility-weighted GC: plain policy "
          f"{plain_weighted_gc:.4f} -> utility-aware policy "
          f"{weighted.weighted_gc:.4f}")

    # --- quota run: the digest needs any 2 of its 3 feeds ---------------
    quotas = QuotaMap({
        (eta.profile_id, eta.tinterval_id): 2 for eta in digest
    })
    quota_run = run_with_quotas(profiles, epoch, budget, policy, quotas)
    print(f"quota:     {quota_run.summary()}")
    print(f"           schedule meets quotas for "
          f"{quota_completeness(profiles, quota_run.schedule, quotas):.4f} "
          f"of t-intervals")

    # Quotas make the digest cheaper to satisfy, so overall completeness
    # should not drop relative to the all-required run.
    assert quota_run.gc >= plain.gc - 1e-9, (
        "quota semantics should never lower completeness")


if __name__ == "__main__":
    main()
