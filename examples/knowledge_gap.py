#!/usr/bin/env python3
"""What is perfect knowledge worth? FPN(1) vs fitted predictions.

The paper's experiments assume the proxy knows the real update trace
(FPN(1)). Real proxies must *predict* updates from history. This example
fits estimators on the first half of two very different traces — a
clockwork feed population and a bursty Poisson one — and measures how
much gained completeness survives when the proxy schedules against its
own predictions but is judged against reality.

Run: ``python examples/knowledge_gap.py``
"""

from repro import (
    AdaptiveEstimator,
    BudgetVector,
    Epoch,
    GeneratorConfig,
    PeriodicUpdateModel,
    PoissonUpdateModel,
    evaluate_knowledge_gap,
    make_policy,
)


def main() -> None:
    epoch = Epoch(600)
    resources = range(30)
    train_end = 300

    traces = {
        "clockwork feeds (period 20)": PeriodicUpdateModel(
            20, phases={r: (7 * r) % 20 for r in resources}
        ).generate(resources, epoch),
        "bursty sources (Poisson 20)": PoissonUpdateModel(
            20, seed=8).generate(resources, epoch),
    }

    policy = make_policy("MRSF")
    print(f"{'trace':<30} {'window':>6} {'perfect':>8} "
          f"{'predicted':>10} {'lost':>7}")
    for label, trace in traces.items():
        for window in (5, 15):
            config = GeneratorConfig(
                num_profiles=50, max_rank=2, window=window,
                grouping="indexed", seed=17)
            gap = evaluate_knowledge_gap(
                trace, AdaptiveEstimator(), train_end, config, epoch,
                BudgetVector(1), policy)
            print(f"{label:<30} {window:>6} {gap.gc_perfect:>8.3f} "
                  f"{gap.gc_predicted:>10.3f} "
                  f"{gap.degradation:>6.1%}")

    print(
        "\nTakeaway: the FPN(1) assumption is free for regular sources\n"
        "and expensive for bursty ones — and wider delivery windows\n"
        "buy back much of the prediction error."
    )


if __name__ == "__main__":
    main()
