#!/usr/bin/env python3
"""The async proxy as a network service, end to end in one process.

Everything the paper's proxy does — pull volatile resources under a
probing budget, push completed t-intervals to clients — but exposed the
way a deployment would actually consume it:

1. **serve** — an :class:`AsyncMonitoringProxy` wrapped in the HTTP/SSE
   :class:`ProxyService`, ticking its epoch in the background;
2. **register over HTTP** — two clients POST profiles (one high-, one
   low-utility) while an admission controller enforces a global
   t-interval capacity, shedding the low-utility profile when a
   high-utility one needs the room;
3. **watch the SSE stream** — registrations, ticks, and notifications
   arrive as server-sent events on a plain TCP socket;
4. **crash and recover** — the service dies mid-epoch (simulated
   ``kill -9``: the object is discarded, only the journal file
   survives) and a fresh proxy rebuilds from the journal: same clients,
   same profile ids, completed work re-delivered exactly once, pending
   work resumed to the exact same completions an uninterrupted run
   produces.

Deterministic end to end; reruns print the same numbers.

Run: ``python examples/async_service.py``
"""

import asyncio
import json
import tempfile
from pathlib import Path

from repro import BudgetVector, Epoch, OriginServer, PoissonUpdateModel
from repro.online import MRSFPolicy
from repro.runtime.aio import (
    AdmissionController,
    AsyncMonitoringProxy,
    Journal,
    ProxyService,
)

EPOCH = Epoch(60)
RESOURCES = 8


def make_server() -> OriginServer:
    trace = PoissonUpdateModel(6.0, seed=11).generate(
        range(RESOURCES), EPOCH)
    return OriginServer(trace)


def make_proxy(journal_path: Path,
               recover: bool = False) -> AsyncMonitoringProxy:
    if recover:
        return AsyncMonitoringProxy.recover(
            journal_path, make_server(), EPOCH, BudgetVector(2),
            MRSFPolicy())
    return AsyncMonitoringProxy(
        make_server(), EPOCH, BudgetVector(2), MRSFPolicy(),
        journal=Journal(journal_path))


PROFILES = {
    "newsroom": {  # high utility: breaking-news windows
        "name": "breaking",
        "utility": 0.9,
        "tintervals": [[[0, 1, 20], [1, 10, 30]], [[2, 25, 50]]],
    },
    "archiver": {  # low utility: bulk background crawl
        "name": "bulk-crawl",
        "utility": 0.2,
        "tintervals": [[[3, 1, 55]], [[4, 1, 55]], [[5, 1, 55]]],
    },
}


async def http(port: int, method: str, path: str, body=None, key=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = [f"{method} {path} HTTP/1.1", "Host: localhost"]
    if key:
        head.append(f"Authorization: Bearer {key}")
    head.append(f"Content-Length: {len(payload)}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, rest = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    return status, json.loads(rest) if rest else {}


async def watch_events(port: int, seen: list) -> None:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(b"GET /events HTTP/1.1\r\nHost: localhost\r\n\r\n")
    await writer.drain()
    await reader.readuntil(b"\r\n\r\n")
    try:
        while True:
            line = await reader.readline()
            if not line:
                return
            text = line.decode().strip()
            if text.startswith("event:"):
                seen.append(text.split(": ", 1)[1])
    except (ConnectionResetError, asyncio.CancelledError):
        pass
    finally:
        writer.close()


async def first_life(journal_path: Path) -> dict:
    """Serve, register over HTTP, watch SSE, then 'crash' mid-epoch."""
    proxy = make_proxy(journal_path)
    service = ProxyService(
        proxy, AdmissionController(max_tintervals=4,
                                   max_profiles_per_client=8))
    _, port = await service.start()
    print(f"serving on 127.0.0.1:{port}")

    events: list = []
    watcher = asyncio.ensure_future(watch_events(port, events))

    status, body = await http(port, "POST", "/profiles",
                              PROFILES["archiver"], key="archiver")
    print(f"archiver registered profile {body['profile_id']} "
          f"(status {status})")
    status, body = await http(port, "POST", "/profiles",
                              PROFILES["newsroom"], key="newsroom")
    print(f"newsroom registered profile {body['profile_id']} "
          f"(status {status}), shed {body['shed']} — the low-utility "
          f"bulk crawl made room")

    service.serve_epoch(tick_interval=0.003)
    while proxy.clock < 30:  # run half the epoch, then die
        await asyncio.sleep(0.002)
    await service.stop()
    watcher.cancel()

    delivered = {key: len(client.mailbox)
                 for key, client in service._clients_by_key.items()}
    print(f"mid-epoch crash at chronon {proxy.clock}: "
          f"{dict(sorted(delivered.items()))} notifications delivered, "
          f"SSE saw {events.count('notification')} notification events")
    proxy.journal.close()  # the process dies; only the file survives
    return {"delivered": delivered,
            "completed": set(proxy.completed_log)}


async def second_life(journal_path: Path, before: dict) -> None:
    """Recover from the journal and finish the epoch."""
    proxy = make_proxy(journal_path, recover=True)
    redelivered = set(proxy.completed_log)
    assert redelivered == before["completed"], "recovery lost work"
    print(f"recovered at chronon {proxy.clock}: "
          f"{len(redelivered)} completed t-intervals re-delivered, "
          f"in-flight captures restored from the journal")
    stats = await proxy.arun()
    print(f"epoch finished: {stats.completed} completed, "
          f"{stats.expired} expired "
          f"({stats.registered} registered; conservation "
          f"{'holds' if stats.registered == stats.completed + stats.expired + stats.dropped else 'BROKEN'})")

    # No t-interval was delivered twice across both lives.
    for client in proxy._clients.values():
        keys = [(n.profile_id, n.tinterval_id) for n in client.mailbox]
        assert len(keys) == len(set(keys)), "duplicate delivery"
    print("exactly-once delivery verified across the crash")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = Path(tmp) / "proxy-journal.jsonl"
        before = asyncio.run(first_life(journal_path))
        print()
        asyncio.run(second_life(journal_path, before))


if __name__ == "__main__":
    main()
