#!/usr/bin/env python3
"""The full system: DSL-specified profiles on a live proxy runtime.

This example wires every layer together the way the paper's architecture
diagram describes it: an *origin server* holds volatile feed data, clients
register profiles written in the specification language, and the
*monitoring proxy* pulls from the server under a probing budget and pushes
notifications (with the captured payloads) to each client — including a
client that joins while the proxy is already running.

Run: ``python examples/proxy_server.py``
"""

from repro import (
    BudgetVector,
    Epoch,
    FeedTraceSynthesizer,
    MonitoringProxy,
    OriginServer,
    compile_text,
)
from repro.core import Profile, TInterval
from repro.online import MEDFPolicy

SPEC = """
# Newsroom monitoring: every item from two wire feeds, before overwrite,
# plus a market pair that must be observed with overlapping freshness.
profile wires {
    subscribe feed/hourly-0, feed/hourly-1 until overwrite;
}
profile markets {
    watch 6, 7 overlap within 12;
}
"""

LATE_SPEC = """
# A customer who shows up at mid-epoch with a 2-of-3 digest.
profile late-digest {
    watch 2, 3, 4 indexed within 15 quota 2;
}
"""


def main() -> None:
    epoch = Epoch(400)
    synthesizer = FeedTraceSynthesizer(12, epoch, chronons_per_hour=12,
                                       seed=21)
    trace = synthesizer.generate()
    catalog = synthesizer.catalog()
    print(f"origin server: 12 feeds, {len(trace)} updates queued\n")

    server = OriginServer(trace)
    proxy = MonitoringProxy(server, epoch, BudgetVector(1), MEDFPolicy())

    # --- client 1: registered up front through the DSL -----------------
    compiled = compile_text(SPEC, trace, epoch, catalog=catalog)
    newsroom = proxy.register_client("newsroom")
    for profile in compiled.profiles:
        bare = Profile([TInterval(eta.eis) for eta in profile],
                       name=profile.name)
        proxy.register_profile(newsroom, bare)
    print(f"newsroom registered: "
          f"{compiled.profiles.total_tintervals} t-intervals from "
          f"{len(compiled.profiles)} profiles")

    # --- run half the epoch, then a client joins live -------------------
    proxy.run(until=200)
    mid_stats = proxy.stats()
    print(f"\nat chronon 200: {mid_stats.completed} notifications "
          f"delivered, {mid_stats.expired} expired, "
          f"{mid_stats.pending} pending")

    late = compile_text(LATE_SPEC, trace, epoch, catalog=catalog)
    customer = proxy.register_client("late-customer")
    for profile in late.profiles:
        bare = Profile([TInterval(eta.eis) for eta in profile],
                       name=profile.name)
        proxy.register_profile(customer, bare)
    print("late-customer joined at chronon 200")

    stats = proxy.run()
    print(f"\nfinal: {stats.completed} completed, {stats.expired} "
          f"expired, {stats.probes_used} probes "
          f"(completeness {stats.completeness:.2f})")

    print("\nsample notifications (newsroom):")
    for notification in newsroom.mailbox[:5]:
        values = ", ".join(notification.values())
        print(f"  [{notification.completed_at:>3}] "
              f"{notification.profile_name}: {values}")

    print(f"\nlate-customer received {len(customer.mailbox)} "
          f"notifications after joining mid-run")
    assert all(n.client_id == customer.client_id
               for n in customer.mailbox)


if __name__ == "__main__":
    main()
