#!/usr/bin/env python3
"""AuctionWatch: the paper's evaluation scenario end-to-end.

Synthesizes an eBay-like bid trace (overlapping auction lifetimes, sniping
bursts, brand popularity), generates AuctionWatch(3) profiles with the
paper's three-stage Zipf process, and compares all six policy variants —
essentially a miniature Figure 3, but showing the full public API.

Also demonstrates the CSV round-trip: the trace is written to disk and
reloaded through the same loader a real eBay trace would use.

Run: ``python examples/auction_watch.py``
"""

import tempfile
from pathlib import Path

from repro import (
    AuctionTraceSynthesizer,
    BudgetVector,
    Epoch,
    GeneratorConfig,
    ProfileGenerator,
    UpdateTrace,
    parse_policy_spec,
    run_online,
)


def main() -> None:
    epoch = Epoch(600)
    synthesizer = AuctionTraceSynthesizer(
        num_auctions=150, epoch=epoch, mean_bids=15.0, seed=7)
    trace = synthesizer.generate()
    catalog = synthesizer.catalog()

    brands: dict[str, int] = {}
    for resource in catalog:
        brand = resource.meta["brand"]
        brands[brand] = brands.get(brand, 0) + 1
    print(f"auctions: {len(catalog)} "
          f"({', '.join(f'{count} {brand}' for brand, count in sorted(brands.items()))})")
    print(f"bids:     {len(trace)} "
          f"(avg {trace.mean_intensity():.1f} per auction)\n")

    # CSV round-trip — the drop-in path for a real eBay trace.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "ebay_bids.csv"
        trace.to_csv(path)
        trace = UpdateTrace.from_csv(path, epoch)
        print(f"reloaded {len(trace)} bid events from {path.name}\n")

    # AuctionWatch(3) profiles: every new bid on each of 3 parallel
    # auctions must be seen within a 20-chronon window.
    generator = ProfileGenerator(GeneratorConfig(
        num_profiles=80, max_rank=3, alpha=1.37, beta=0.0,
        window=20, seed=11))
    profiles = generator.generate(trace, epoch)
    print(f"profiles: {profiles}\n")

    budget = BudgetVector(2)  # the paper's Figure-3 budget
    print(f"{'policy':<12} {'GC':>8} {'probes':>8} {'expired':>8}")
    for spec in ("S-EDF(NP)", "S-EDF(P)", "MRSF(NP)", "MRSF(P)",
                 "M-EDF(NP)", "M-EDF(P)"):
        policy, preemptive = parse_policy_spec(spec)
        result = run_online(profiles, epoch, budget, policy,
                            preemptive=preemptive)
        print(f"{result.label:<12} {result.gc:>8.4f} "
              f"{result.probes_used:>8} {result.expired:>8}")


if __name__ == "__main__":
    main()
