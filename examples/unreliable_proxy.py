#!/usr/bin/env python3
"""Monitoring against an unreliable origin server.

The paper's evaluation assumes every probe succeeds. This example wires
the fault-injection layer into the live runtime, in two vignettes:

1. **Random drops vs. retries** — the server drops half of all
   requests; an in-chronon retry allowance (spending leftover budget)
   recovers the lost notifications.
2. **Dead feed vs. circuit breaker** — one feed is offline for the
   whole epoch and the budget is contested; the breaker quarantines the
   dead feed so its budget flows to feeds that can still be captured.

Every fault is deterministic (seeded), so reruns print the same numbers.

Run: ``python examples/unreliable_proxy.py``
"""

from repro import (
    BudgetVector,
    CircuitBreaker,
    Epoch,
    FaultSpec,
    FeedTraceSynthesizer,
    MonitoringProxy,
    OriginServer,
    Outage,
    RetryConfig,
    UnreliableServer,
    compile_text,
)
from repro.core import Profile, TInterval
from repro.online import MEDFPolicy

EPOCH = Epoch(400)

WIRE_SPEC = """
# The newsroom profiles of examples/proxy_server.py — but the wire
# service is having a bad day.
profile wires {
    subscribe feed/hourly-0, feed/hourly-1 until overwrite;
}
profile markets {
    watch 6, 7 overlap within 12;
}
"""

CONTENDED_SPEC = """
# Three overwrite subscriptions plus a 2-of-3 digest on a budget of one
# probe per chronon: every probe wasted on a dead feed is a capture
# lost elsewhere.
profile wires {
    subscribe feed/hourly-0, feed/hourly-1, feed/hourly-2 until overwrite;
}
profile digest {
    watch 3, 4, 5 indexed within 15 quota 2;
}
"""


def run(spec_text, feeds, chronons_per_hour, budget, faults=None,
        retry=None, breaker=None):
    synthesizer = FeedTraceSynthesizer(feeds, EPOCH,
                                       chronons_per_hour=chronons_per_hour,
                                       seed=21)
    trace = synthesizer.generate()
    server = OriginServer(trace)
    if faults is not None:
        server = UnreliableServer(server, faults)
    compiled = compile_text(spec_text, trace, EPOCH,
                            catalog=synthesizer.catalog())
    proxy = MonitoringProxy(server, EPOCH, BudgetVector(budget),
                            MEDFPolicy(), retry=retry, breaker=breaker)
    client = proxy.register_client("newsroom")
    for profile in compiled.profiles:
        bare = Profile([TInterval(eta.eis) for eta in profile],
                       name=profile.name)
        proxy.register_profile(client, bare)
    return proxy.run()


def report(label, stats):
    print(f"  {label:22} {stats.completed:>3} completed, "
          f"{stats.expired} expired, {stats.probes_failed} failed "
          f"requests, {stats.retries} retries, "
          f"{stats.resources_quarantined} quarantined "
          f"(completeness {stats.completeness:.2f})")
    assert stats.registered == (stats.completed + stats.expired
                                + stats.dropped)


def vignette_drops_vs_retries() -> None:
    print("1. random drops vs. in-chronon retries "
          "(drop rate 0.5, budget 2)")
    wires = dict(spec_text=WIRE_SPEC, feeds=12, chronons_per_hour=12,
                 budget=2)
    drops = FaultSpec(failure_probability=0.5, seed=7)
    report("reliable server:", run(**wires))
    report("drops, no retries:", run(**wires, faults=drops))
    report("drops + retries:", run(**wires, faults=drops,
                                   retry=RetryConfig(max_retries=1)))
    print()


def vignette_outage_vs_breaker() -> None:
    print("2. dead feed vs. circuit breaker "
          "(feed 0 down all epoch, budget 1)")
    contended = dict(spec_text=CONTENDED_SPEC, feeds=6,
                     chronons_per_hour=6, budget=1)
    outage = FaultSpec(outages=(Outage(0, 0, None),), seed=7)
    breaker = CircuitBreaker(failure_threshold=3, cooldown=8,
                             backoff_factor=2.0)
    report("reliable server:", run(**contended))
    report("outage, no breaker:", run(**contended, faults=outage))
    report("outage + breaker:", run(**contended, faults=outage,
                                    breaker=breaker))
    print()


def main() -> None:
    vignette_drops_vs_retries()
    vignette_outage_vs_breaker()
    print("retries recover what random drops cost; the breaker stops a "
          "dead feed\nfrom bleeding the budget the other feeds need.")


if __name__ == "__main__":
    main()
