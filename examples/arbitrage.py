#!/usr/bin/env python3
"""The paper's Figure-1 scenario: arbitrage monitoring across markets.

A financial analyst watches one security on several markets. An arbitrage
check is valid only when price observations from *all* markets refer to
overlapping validity periods — exactly a complex profile whose t-intervals
pair overlapping execution intervals, one per market.

This example synthesizes correlated multi-market tick streams, builds the
arbitrage profile with the overlap grouping, runs the online policies
under a tight probing budget, and reports how many arbitrage windows were
fully observed — including the actual price divergences captured.

Run: ``python examples/arbitrage.py``
"""

from repro import (
    BudgetVector,
    Epoch,
    StockMarketSynthesizer,
    make_policy,
    run_online,
)
from repro.core import ProfileSet
from repro.workloads import AuctionWatchTemplate, WindowRestriction


def main() -> None:
    epoch = Epoch(500)
    markets = 5
    synthesizer = StockMarketSynthesizer(
        num_markets=markets, epoch=epoch, updates_per_market=350,
        divergence=0.006, seed=42)
    trace = synthesizer.generate()
    catalog = synthesizer.catalog()
    print(f"markets: {[r.name for r in catalog]}")
    print(f"ticks:   {len(trace)} updates over {epoch.length} chronons\n")

    # Prices stay valid for only 4 chronons; an arbitrage check needs one
    # fresh observation per market with overlapping validity. With one
    # probe per chronon and five fast markets, the budget is scarce —
    # the policies must triage.
    template = AuctionWatchTemplate(WindowRestriction(4),
                                    grouping="overlap")
    profile = template.build_profile(list(range(markets)), trace, epoch,
                                     name="arbitrage-watch")
    profiles = ProfileSet([profile])
    print(f"arbitrage windows to capture: {len(profile)} "
          f"(rank {profile.rank})\n")

    budget = BudgetVector(1)
    results = {}
    for name in ("S-EDF", "MRSF", "M-EDF"):
        result = run_online(profiles, epoch, budget, make_policy(name))
        results[name] = result
        print(f"  {result.summary()}")

    # Decode what the best policy actually saw: for every captured
    # arbitrage window, the max price spread across markets.
    best_name = max(results, key=lambda name: results[name].gc)
    best = results[best_name]
    print(f"\ncaptured arbitrage windows under {best.label}:")
    quotes_by_market = {
        market: [synthesizer.parse_quote(event)
                 for event in trace.events_for(market)]
        for market in range(markets)
    }
    shown = 0
    for eta in profile:
        if not best.schedule.captures_tinterval(eta) or shown >= 5:
            continue
        prices = []
        for ei in eta:
            # latest quote at or before the window start
            candidates = [quote for quote in
                          quotes_by_market[ei.resource_id]
                          if quote.chronon <= ei.finish]
            if candidates:
                prices.append(candidates[-1].price)
        if len(prices) == len(eta):
            spread = max(prices) - min(prices)
            print(f"  window [{eta.earliest_start},{eta.latest_finish}] "
                  f"spread={spread:.4f} "
                  f"({'arbitrage!' if spread > 0.5 else 'no edge'})")
            shown += 1


if __name__ == "__main__":
    main()
