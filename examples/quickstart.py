#!/usr/bin/env python3
"""Quickstart: monitor volatile resources with a complex profile.

Builds a tiny scenario by hand — two resources, one complex profile that
needs both observed within overlapping windows — and compares the paper's
three online policies against the exact offline optimum.

Run: ``python examples/quickstart.py``
"""

from repro import (
    BudgetVector,
    Epoch,
    ExecutionInterval,
    MILPSolver,
    Profile,
    ProfileSet,
    TInterval,
    make_policy,
    run_online,
)


def main() -> None:
    epoch = Epoch(30)
    budget = BudgetVector(1)  # one probe per chronon

    # A complex profile: each t-interval pairs an observation window on
    # resource 0 with an overlapping window on resource 1 (think: the same
    # stock on two markets — an arbitrage check is only valid if both
    # prices are fresh at overlapping times).
    pairs = [
        (ExecutionInterval(0, 2, 6), ExecutionInterval(1, 4, 8)),
        (ExecutionInterval(0, 10, 13), ExecutionInterval(1, 11, 15)),
        (ExecutionInterval(0, 18, 21), ExecutionInterval(1, 20, 24)),
    ]
    arbitrage = Profile([TInterval(list(pair)) for pair in pairs],
                        name="arbitrage")

    # A simple profile competing for the same budget: single-EI t-intervals
    # on a third resource.
    feed = Profile(
        [TInterval([ExecutionInterval(2, start, start + 3)])
         for start in (1, 7, 13, 19, 25)],
        name="feed",
    )

    profiles = ProfileSet([arbitrage, feed])
    print(f"profiles: {profiles}")
    print(f"rank(P) = {profiles.rank}, "
          f"{profiles.total_tintervals} t-intervals\n")

    for name in ("S-EDF", "MRSF", "M-EDF"):
        result = run_online(profiles, epoch, budget, make_policy(name),
                            preemptive=True)
        print(f"  {result.summary()}")

    optimum = MILPSolver().solve(profiles, epoch, budget)
    print(f"  {optimum.summary()}")

    print("\nPer-profile completeness under MRSF(P):")
    mrsf = run_online(profiles, epoch, budget, make_policy("MRSF"))
    for profile in profiles:
        gc = mrsf.report.profile_gc(profile.profile_id)
        print(f"  {profile.name}: {gc:.2f}")


if __name__ == "__main__":
    main()
