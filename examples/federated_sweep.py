#!/usr/bin/env python3
"""A four-shard proxy federation under a budget sweep.

One monitoring proxy scores every candidate pool every chronon; the
federation splits the resource catalog over shards via a
consistent-hash ring and lets a coordinator merge per-shard proposals
into the *same* global selection the monolith would make — probe for
probe, at any shard count (docs/ALGORITHMS.md §15). This example runs
a 4-shard fleet over one synthetic instance at several per-chronon
budgets and prints what the monolith cannot show you: where the
catalog lives (per-shard load), where the budget actually flowed
(routed probes), and how much of it had to be stolen across shards to
follow urgency rather than the nominal even split.

Everything is seeded; reruns print the same numbers.

Run: ``python examples/federated_sweep.py``
"""

from repro.core import BudgetVector
from repro.online.registry import parse_policy_spec
from repro.simulation import federated_run, run_online
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import make_instance

SHARDS = 4
BUDGETS = (1, 2, 4, 8)
POLICY = "M-EDF(P)"

CONFIG = ExperimentConfig(
    epoch_length=120, num_resources=24, num_profiles=80,
    intensity=10.0, budget=max(BUDGETS), window=8, repetitions=1,
    grouping="overlap", seed=4242)


def sweep_row(profiles, budget):
    policy, preemptive = parse_policy_spec(POLICY)
    monolith = run_online(profiles, CONFIG.epoch, BudgetVector(budget),
                          policy, preemptive=preemptive, engine="fast")
    policy, preemptive = parse_policy_spec(POLICY)
    federated = federated_run(profiles, CONFIG.epoch,
                              BudgetVector(budget), policy,
                              preemptive=preemptive, shards=SHARDS)
    identical = (list(federated.result.schedule.probes())
                 == list(monolith.schedule.probes()))
    return monolith, federated, identical


def main() -> None:
    _trace, profiles = make_instance(CONFIG, 0)
    print(f"{SHARDS}-shard federation vs. monolith — {POLICY}, "
          f"{CONFIG.num_profiles} profiles over "
          f"{CONFIG.num_resources} resources\n")
    print(f"{'budget':>6} {'monolith GC':>12} {'federated GC':>13} "
          f"{'identical':>9} {'stolen':>6} {'transfers':>9}")
    rows = []
    for budget in BUDGETS:
        monolith, federated, identical = sweep_row(profiles, budget)
        rows.append((budget, federated))
        print(f"{budget:>6} {monolith.gc:>12.4f} "
              f"{federated.gc:>13.4f} {str(identical):>9} "
              f"{federated.stolen_budget:>6} "
              f"{federated.steal_transfers:>9}")
        assert identical, "federated schedule diverged from the monolith"
    print("\nper-shard load at the tightest and loosest budgets:")
    for budget, federated in (rows[0], rows[-1]):
        print(f"  budget {budget}:")
        for load in federated.loads:
            print(f"    shard {load.shard}: {load.resources:>3} "
                  f"resources, {load.probes_routed:>4} probes routed, "
                  f"nominal {load.nominal_budget:>4}, "
                  f"stolen in {load.stolen_in:>3} / "
                  f"out {load.stolen_out:>3}")
        total = sum(load.probes_routed for load in federated.loads)
        assert total == federated.result.probes_used
    print("\nthe ranking routes probes to whichever shard holds the "
          "most urgent pools;\nthe ledger's stolen column is the gap "
          "between that and the even nominal split.")


if __name__ == "__main__":
    main()
